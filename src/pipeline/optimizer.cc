#include "src/pipeline/optimizer.h"

#include <algorithm>
#include <cstdio>

#include "src/backends/mira_backend.h"
#include "src/ir/verifier.h"
#include "src/passes/convert.h"
#include "src/passes/fuse.h"
#include "src/passes/prefetch_evict.h"
#include "src/telemetry/telemetry.h"

namespace mira::pipeline {

ir::Module CompileWithPlan(const ir::Module& source, const PlanDraft& draft,
                           const PlannerOptions& options, const std::string& entry) {
  ir::Module module = source.Clone();
  {
    analysis::AccessAnalysis access(&module);
    access.Run();
    passes::RemotableConversion(&module, access, draft.selected_objects);
  }
  if (options.enable_batching) {
    passes::FuseAndBatchLoops(&module);
  }
  if (options.enable_prefetch) {
    analysis::AccessAnalysis access(&module);
    access.Run();
    passes::InsertPrefetches(&module, access, draft.compile_info);
  }
  if (options.enable_evict_hints) {
    analysis::AccessAnalysis access(&module);
    access.Run();
    passes::InsertEvictionHints(&module, access, draft.compile_info);
  }
  {
    analysis::AccessAnalysis access(&module);
    access.Run();
    analysis::LifetimeAnalysis lifetime(&module, &access);
    lifetime.Run(entry);
    passes::InsertLifetimeEnds(&module, entry, lifetime, draft.selected_objects);
  }
  if (options.enable_promote) {
    analysis::AccessAnalysis access(&module);
    access.Run();
    passes::PromoteNativeLoads(&module, access, draft.compile_info);
  }
  if (options.enable_offload && !draft.offload_functions.empty()) {
    passes::OffloadExtraction(&module, draft.offload_functions);
  }
  auto status = ir::VerifyModule(module);
  MIRA_CHECK_MSG(status.ok(), status.ToString().c_str());
  return module;
}

support::ThreadPool& IterativeOptimizer::Pool() {
  if (options_.jobs <= 0) {
    return support::SharedPool();
  }
  if (owned_pool_ == nullptr) {
    owned_pool_ =
        std::make_unique<support::ThreadPool>(static_cast<size_t>(options_.jobs - 1));
  }
  return *owned_pool_;
}

uint64_t IterativeOptimizer::Evaluate(const ir::Module& module, const runtime::CachePlan& plan,
                                      interp::RunProfile* profile,
                                      bool profiling_instrumented) {
  World world = MakeWorld(SystemKind::kMira, options_.local_bytes, plan, cost_);
  interp::InterpOptions iopts;
  iopts.seed = options_.train_seed;
  iopts.profiling = profiling_instrumented;
  iopts.engine = options_.engine;
  interp::Interpreter interp(&module, world.backend.get(), iopts);
  auto result = interp.Run(options_.entry);
  MIRA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  world.backend->Drain(interp.clock());
  if (profile != nullptr) {
    *profile = interp.profile();
  }
  if (options_.verbose) {
    auto* mira = static_cast<backends::MiraBackend*>(world.backend.get());
    for (uint32_t i = 0; i < plan.sections.size(); ++i) {
      const auto& st = mira->SectionStatsAt(i);
      std::fprintf(stderr,
                   "[mira-opt]   section %u '%s': hits=%llu misses=%llu stall=%.3fms "
                   "runtime=%.3fms pf=%llu pf_hits=%llu pf_late=%.3fms evict=%llu\n",
                   i, plan.sections[i].name.c_str(),
                   static_cast<unsigned long long>(st.lines.hits),
                   static_cast<unsigned long long>(st.lines.misses),
                   static_cast<double>(st.stall_ns) / 1e6,
                   static_cast<double>(st.runtime_ns) / 1e6,
                   static_cast<unsigned long long>(st.prefetches_issued),
                   static_cast<unsigned long long>(st.prefetched_hits),
                   static_cast<double>(st.prefetch_late_ns) / 1e6,
                   static_cast<unsigned long long>(st.evictions));
    }
    const auto& sw = mira->swap_stats();
    std::fprintf(stderr, "[mira-opt]   swap: hits=%llu misses=%llu stall=%.3fms\n",
                 static_cast<unsigned long long>(sw.lines.hits),
                 static_cast<unsigned long long>(sw.lines.misses),
                 static_cast<double>(sw.stall_ns) / 1e6);
  }
  return interp.clock().now_ns();
}

double IterativeOptimizer::SizeSections(const ir::Module& compiled, PlanDraft* draft,
                                        const analysis::LifetimeAnalysis& lifetime) {
  if (draft->sample_sections.empty()) {
    return -1.0;
  }
  const uint64_t avail = static_cast<uint64_t>(
      static_cast<double>(options_.local_bytes) * (1.0 - options_.planner.swap_reserve));
  // Inverse index: section index → slot in sample_sections (SIZE_MAX when
  // the section is not sampled). Replaces the per-section std::find scans.
  std::vector<size_t> section_to_si(draft->plan.sections.size(), SIZE_MAX);
  for (size_t si = 0; si < draft->sample_sections.size(); ++si) {
    if (draft->sample_sections[si] < section_to_si.size()) {
      section_to_si[draft->sample_sections[si]] = si;
    }
  }
  uint64_t fixed = 0;
  for (uint32_t i = 0; i < draft->plan.sections.size(); ++i) {
    if (section_to_si[i] == SIZE_MAX) {
      fixed += draft->plan.sections[i].size_bytes;
    }
  }
  const uint64_t budget = avail > fixed ? avail - fixed : avail / 2;

  // Sample each section's overhead at the candidate sizes. Every probe of
  // the (section × ratio) grid is an independent deterministic simulation
  // in its own world, so the whole grid fans out on the evaluation pool;
  // each task writes its index-addressed slot, keeping the result arrays
  // bit-identical to the serial order.
  const size_t num_ratios = options_.size_samples.size();
  std::vector<solver::SectionChoices> choices(draft->sample_sections.size());
  for (auto& c : choices) {
    c.sizes.resize(num_ratios);
    c.costs.resize(num_ratios);
  }
  Pool().ParallelFor(draft->sample_sections.size() * num_ratios, [&](size_t task) {
    const size_t si = task / num_ratios;
    const size_t ri = task % num_ratios;
    const uint32_t section_index = draft->sample_sections[si];
    const double ratio = options_.size_samples[ri];
    runtime::CachePlan probe = draft->plan;
    auto& target = probe.sections[section_index];
    const uint64_t size = std::max<uint64_t>(
        static_cast<uint64_t>(static_cast<double>(budget) * ratio),
        static_cast<uint64_t>(target.line_bytes) * 4);
    target.size_bytes = size - size % target.line_bytes;
    // Other sampled sections keep their defaults (equal shares).
    World world = MakeWorld(SystemKind::kMira, options_.local_bytes, probe, cost_);
    interp::InterpOptions iopts;
    iopts.seed = options_.train_seed;
    iopts.engine = options_.engine;
    interp::Interpreter interp(&compiled, world.backend.get(), iopts);
    auto result = interp.Run(options_.entry);
    MIRA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    auto* mira = static_cast<backends::MiraBackend*>(world.backend.get());
    const auto& stats = mira->SectionStatsAt(section_index);
    choices[si].sizes[ri] = target.size_bytes;
    choices[si].costs[ri] = static_cast<double>(stats.overhead_ns());
  });

  // Constraints: per lifetime phase, live sampled sections fit in `budget`.
  // Liveness is stamped per sampled section in one pass over the object →
  // section map (each object marks its lifetime interval), instead of an
  // O(objects) rescan per (statement, section) pair.
  const int stmts = lifetime.statement_count();
  const int phases = std::max(stmts, 1);
  std::vector<std::vector<uint8_t>> live(
      draft->sample_sections.size(),
      std::vector<uint8_t>(phases, stmts == 0 ? 1 : 0));
  if (stmts > 0) {
    for (const auto& [obj, idx] : draft->plan.object_to_section) {
      if (idx >= section_to_si.size() || section_to_si[idx] == SIZE_MAX) {
        continue;
      }
      auto& row = live[section_to_si[idx]];
      // An object with no recorded lifetime is conservatively live at every
      // statement (matches the lifetimes().find miss in the old scan).
      int first = 0;
      int last = stmts - 1;
      const auto lt = lifetime.lifetimes().find(obj);
      if (lt != lifetime.lifetimes().end()) {
        first = std::max(0, lt->second.first_stmt);
        last = std::min(stmts - 1, lt->second.last_stmt);
      }
      for (int stmt = first; stmt <= last; ++stmt) {
        row[stmt] = 1;
      }
    }
  }
  std::vector<solver::CapacityConstraint> constraints;
  std::set<std::vector<int>> seen;
  for (int stmt = 0; stmt < phases; ++stmt) {
    std::vector<int> members;
    for (size_t si = 0; si < draft->sample_sections.size(); ++si) {
      if (live[si][stmt] != 0) {
        members.push_back(static_cast<int>(si));
      }
    }
    if (members.empty() || !seen.insert(members).second) {
      continue;
    }
    constraints.push_back(solver::CapacityConstraint{members, budget});
  }
  if (constraints.empty()) {
    std::vector<int> all;
    for (size_t si = 0; si < draft->sample_sections.size(); ++si) {
      all.push_back(static_cast<int>(si));
    }
    constraints.push_back(solver::CapacityConstraint{all, budget});
  }

  const solver::IlpSolution solution = solver::SolveSectionSizing(choices, constraints);
  if (!solution.feasible) {
    return -1.0;  // keep defaults
  }
  double predicted_overhead_ns = 0.0;
  for (size_t si = 0; si < draft->sample_sections.size(); ++si) {
    const auto pick = static_cast<size_t>(solution.choice[si]);
    draft->plan.sections[draft->sample_sections[si]].size_bytes = choices[si].sizes[pick];
    predicted_overhead_ns += choices[si].costs[pick];
  }
  return predicted_overhead_ns;
}

CompiledProgram IterativeOptimizer::Optimize() {
  // The optimization loop gets its own trace track: the clock advances by
  // each candidate's measured run time, so iteration instants line up in
  // the order (and at the cumulative cost) the loop actually paid.
  sim::SimClock pclk(0, sim::AllocateTid());
  auto& trace = telemetry::Trace();

  // Iteration 0: generic swap configuration, profiling instrumented.
  runtime::CachePlan swap_plan;  // empty: everything in swap
  interp::RunProfile profile;
  baseline_swap_ns_ = Evaluate(*source_, swap_plan, &profile, /*profiling=*/true);
  pclk.Advance(baseline_swap_ns_);
  if (trace.enabled()) {
    trace.Instant(pclk, "pipeline.baseline", "pipeline",
                  "{\"measured_ns\":" + std::to_string(baseline_swap_ns_) + "}");
  }

  CompiledProgram best;
  best.module = source_->Clone();
  best.plan = swap_plan;
  best.total_instrs = source_->InstrCount();
  uint64_t best_ns = baseline_swap_ns_;

  std::set<std::string> cumulative_functions;
  std::set<std::string> cumulative_objects;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    PlannerOptions popts = options_.planner;
    popts.local_bytes = options_.local_bytes;
    popts.func_frac = std::min(1.0, 0.10 * iter);
    popts.obj_frac = std::min(1.0, 0.10 * iter);
    popts.seed_functions = cumulative_functions;
    popts.seed_objects = cumulative_objects;

    analysis::AccessAnalysis access(source_);
    access.Run();
    PlanDraft draft = DerivePlan(*source_, access, profile, cost_, popts);

    cumulative_functions = draft.selected_functions;
    cumulative_objects = draft.selected_objects;

    ir::Module compiled = CompileWithPlan(*source_, draft, popts, options_.entry);

    analysis::AccessAnalysis caccess(&compiled);
    caccess.Run();
    analysis::LifetimeAnalysis lifetime(&compiled, &caccess);
    lifetime.Run(options_.entry);
    const double predicted_overhead_ns = SizeSections(compiled, &draft, lifetime);

    interp::RunProfile iter_profile;
    uint64_t ns = 0;

    // The offload decision rests on a traffic estimate that optimization
    // itself changes, so measure the other variant too and keep the winner
    // (the profiling-guided analogue of the paper's rollback). The two
    // candidate evaluations are independent worlds, so they run as one
    // two-task fan-out on the evaluation pool.
    if (!draft.offload_functions.empty()) {
      PlanDraft alt = draft;
      alt.offload_functions.clear();
      ir::Module no_offload = CompileWithPlan(*source_, alt, popts, options_.entry);
      interp::RunProfile alt_profile;
      uint64_t alt_ns = 0;
      Pool().ParallelFor(2, [&](size_t task) {
        if (task == 0) {
          ns = Evaluate(compiled, draft.plan, &iter_profile, /*profiling=*/true);
        } else {
          alt_ns = Evaluate(no_offload, alt.plan, &alt_profile, /*profiling=*/true);
        }
      });
      if (options_.verbose) {
        std::fprintf(stderr, "[mira-opt]   offload variant %.3f ms vs plain %.3f ms\n",
                     static_cast<double>(ns) / 1e6, static_cast<double>(alt_ns) / 1e6);
      }
      if (alt_ns < ns) {
        ns = alt_ns;
        compiled = std::move(no_offload);
        draft = std::move(alt);
        iter_profile = alt_profile;
      }
    } else {
      ns = Evaluate(compiled, draft.plan, &iter_profile, /*profiling=*/true);
    }

    IterationLog entry;
    entry.iteration = iter;
    entry.func_frac = popts.func_frac;
    entry.time_ns = ns;
    entry.functions_selected = draft.selected_functions.size();
    entry.objects_selected = draft.selected_objects.size();
    entry.sections = draft.plan.sections.size();
    entry.rolled_back = ns >= best_ns;
    log_.push_back(entry);
    pclk.Advance(ns);
    if (trace.enabled()) {
      // One instant per iteration, carrying everything needed to replay the
      // loop's decisions from the trace alone: the candidate configuration,
      // the solver's predicted overhead, the measured time, the incumbent,
      // and whether the candidate was accepted.
      std::string args = "{\"iteration\":" + std::to_string(iter);
      args += ",\"func_frac\":" + std::to_string(popts.func_frac);
      args += ",\"config\":\"" + telemetry::JsonEscape(draft.plan.ToString()) + "\"";
      if (predicted_overhead_ns >= 0.0) {
        args += ",\"predicted_overhead_ns\":" +
                std::to_string(static_cast<uint64_t>(predicted_overhead_ns));
      }
      args += ",\"measured_ns\":" + std::to_string(ns);
      args += ",\"best_ns\":" + std::to_string(best_ns);
      args += entry.rolled_back ? ",\"accepted\":false}" : ",\"accepted\":true}";
      trace.Instant(pclk, "pipeline.iteration", "pipeline", args);
    }
    if (options_.verbose) {
      std::fprintf(stderr, "[mira-opt] iter %d: %.3f ms (%zu funcs, %zu objs, %zu sections)%s\n",
                   iter, static_cast<double>(ns) / 1e6, draft.selected_functions.size(),
                   draft.selected_objects.size(), draft.plan.sections.size(),
                   entry.rolled_back ? " [rolled back]" : "");
      std::fprintf(stderr, "[mira-opt]   funcs:");
      for (const auto& fn : draft.selected_functions) {
        std::fprintf(stderr, " %s", fn.c_str());
      }
      std::fprintf(stderr, "\n[mira-opt]   %s\n", draft.plan.ToString().c_str());
    }

    if (ns < best_ns) {
      best_ns = ns;
      best.module = std::move(compiled);
      best.plan = draft.plan;
      best.draft = draft;
      best.analysis_scope_instrs = 0;
      for (const auto& fname : draft.selected_functions) {
        const ir::Function* f = source_->FindFunction(fname);
        if (f != nullptr) {
          ir::Module tmp;  // count instrs of this function only
          uint64_t n = 0;
          ir::WalkInstrs(f->body, [&](const ir::Instr&) { ++n; });
          best.analysis_scope_instrs += n;
        }
      }
    }
    profile = iter_profile;
  }

  auto& metrics = telemetry::Metrics();
  uint64_t rollbacks = 0;
  for (const auto& l : log_) {
    rollbacks += l.rolled_back ? 1 : 0;
  }
  metrics.SetCounter("pipeline.iterations", log_.size());
  metrics.SetCounter("pipeline.rollbacks", rollbacks);
  metrics.SetCounter("pipeline.baseline_ns", baseline_swap_ns_);
  metrics.SetCounter("pipeline.best_ns", best_ns);
  return best;
}

}  // namespace mira::pipeline
