// The Figure-1 loop: profile → select scopes → analyze → configure cache →
// compile → size sections (sampling + ILP) → evaluate → iterate/rollback.
//
// Each iteration widens the analysis scope (top 10%, 20%, ... functions;
// largest 10%, 20%, ... objects) exactly as §4.1 describes. If a new
// configuration performs worse than the previous best, it is rolled back.

#ifndef MIRA_SRC_PIPELINE_OPTIMIZER_H_
#define MIRA_SRC_PIPELINE_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/lifetime.h"
#include "src/interp/interpreter.h"
#include "src/ir/ir.h"
#include "src/pipeline/planner.h"
#include "src/pipeline/world.h"
#include "src/solver/ilp.h"
#include "src/support/thread_pool.h"

namespace mira::pipeline {

struct OptimizeOptions {
  std::string entry = "main";
  uint64_t local_bytes = 64 << 20;
  int max_iterations = 3;
  // Input seed used for profiling/evaluation runs during optimization (the
  // "training" input; deployment may see different inputs).
  uint64_t train_seed = 42;
  // Execution engine for every interpreter the optimizer (and the adaptive
  // runtime built on it) spawns. kDefault follows the process-wide default
  // (MIRA_INTERP / SetDefaultEngine); results are engine-invariant, so this
  // only affects optimization wall time.
  interp::EngineKind engine = interp::EngineKind::kDefault;
  PlannerOptions planner;  // local_bytes is overwritten from here
  // Sampled size ratios for non-contiguous sections (§4.3).
  std::vector<double> size_samples = {0.2, 0.4, 0.6, 0.8};
  // Host-side parallelism for the independent candidate/probe simulations
  // (the miss-curve sampling grid and the offload-alternative evaluation):
  // 0 = the process-wide default pool (support::DefaultParallelism), 1 =
  // strictly serial, N > 1 = a dedicated pool of N threads (the calling
  // thread participates). Every task simulates in its own isolated world,
  // so results are bit-identical across all settings.
  int jobs = 0;
  bool verbose = false;
};

struct IterationLog {
  int iteration = 0;
  double func_frac = 0.0;
  uint64_t time_ns = 0;
  size_t functions_selected = 0;
  size_t objects_selected = 0;
  size_t sections = 0;
  bool rolled_back = false;
};

struct CompiledProgram {
  ir::Module module;
  runtime::CachePlan plan;
  PlanDraft draft;
  uint64_t analysis_scope_instrs = 0;  // instrs in selected functions
  uint64_t total_instrs = 0;
};

// Applies the full pass stack for `draft` to a clone of `source`.
ir::Module CompileWithPlan(const ir::Module& source, const PlanDraft& draft,
                           const PlannerOptions& options, const std::string& entry);

class IterativeOptimizer {
 public:
  IterativeOptimizer(const ir::Module* source, OptimizeOptions options,
                     const sim::CostModel& cost = sim::CostModel::Default())
      : source_(source), options_(std::move(options)), cost_(cost) {
    options_.planner.local_bytes = options_.local_bytes;
  }

  // Runs the loop; returns the best compilation found.
  CompiledProgram Optimize();

  const std::vector<IterationLog>& log() const { return log_; }
  // The initial all-swap profiling run's duration.
  uint64_t baseline_swap_ns() const { return baseline_swap_ns_; }

 private:
  // One full program execution; returns simulated ns (and profile out).
  uint64_t Evaluate(const ir::Module& module, const runtime::CachePlan& plan,
                    interp::RunProfile* profile, bool profiling_instrumented);

  // Section sizing by sampling + ILP (§4.3). Mutates draft.plan sizes.
  // Returns the solver's predicted overhead (ns) for the chosen sizes, or a
  // negative value when nothing was sampled / the ILP was infeasible.
  double SizeSections(const ir::Module& compiled, PlanDraft* draft,
                      const analysis::LifetimeAnalysis& lifetime);

  // Evaluation pool per options_.jobs (see OptimizeOptions::jobs).
  support::ThreadPool& Pool();

  const ir::Module* source_;
  OptimizeOptions options_;
  const sim::CostModel& cost_;
  std::vector<IterationLog> log_;
  uint64_t baseline_swap_ns_ = 0;
  std::unique_ptr<support::ThreadPool> owned_pool_;
};

}  // namespace mira::pipeline

#endif  // MIRA_SRC_PIPELINE_OPTIMIZER_H_
