// Input adaptation (paper §3): at deployment, user invocations keep using
// the current compilation while Mira samples profiling runs; if the cache
// performance overhead degrades past a threshold (e.g., the input
// distribution changed), a new round of iterative optimization is triggered
// and its compilation replaces the current one only if it measures better —
// the same rollback discipline as the offline loop.

#ifndef MIRA_SRC_PIPELINE_ADAPTIVE_H_
#define MIRA_SRC_PIPELINE_ADAPTIVE_H_

#include <cstdint>

#include "src/pipeline/optimizer.h"

namespace mira::pipeline {

class AdaptiveRuntime {
 public:
  struct Invocation {
    uint64_t result = 0;
    uint64_t sim_ns = 0;
    double overhead_ratio = 0.0;
    // Fraction of sim_ns lost to transport faults: retry waits + backoff
    // plus cache degraded-mode (outage-wait) spans.
    double fault_ratio = 0.0;
    // Integrity-episode counts for this invocation (0 unless an integrity
    // config is attached via SetIntegrityConfig).
    uint64_t corruption_detected = 0;
    uint64_t corruption_healed = 0;
    // Replica promotions taken this invocation (0 unless a cluster config
    // is attached via SetClusterConfig).
    uint64_t failovers = 0;
    bool reoptimized = false;  // this invocation triggered a new round
  };

  // `degrade_factor`: re-optimize when the observed overhead ratio exceeds
  // degrade_factor × the ratio measured right after the last optimization.
  AdaptiveRuntime(const ir::Module* source, OptimizeOptions options,
                  double degrade_factor = 1.5)
      : source_(source), options_(std::move(options)), degrade_factor_(degrade_factor) {
    trace_clock_.set_tid(sim::AllocateTid());
  }

  // Serves one program invocation with input `seed`. The first invocation
  // compiles from scratch (the paper's initial profiling run on the generic
  // swap configuration plays that role).
  Invocation Invoke(uint64_t seed);

  // Deployment-environment fault plan (non-owning; caller keeps it alive).
  // Every Execute — user invocations AND candidate-vs-current comparison
  // runs — attaches a fresh injector for it, so compilations compete under
  // the same deterministic fault schedule. Null disables injection.
  void SetFaultPlan(const net::FaultPlan* plan) { fault_plan_ = plan; }
  // Sustained-fault trigger: re-optimize after `streak` consecutive
  // invocations whose fault_ratio exceeds `ratio`.
  void SetFaultDegradeTrigger(double ratio, int streak = 2) {
    fault_ratio_threshold_ = ratio;
    fault_streak_limit_ = streak;
  }
  // End-to-end integrity config applied to every Execute (non-owning; null
  // disables checking). With checking on, a streak of invocations that each
  // detect >= `min_detected` corruption episodes is treated like the fault
  // trigger: the environment is damaging data in flight, so the compilation
  // re-competes under it (a plan with fewer writebacks may win).
  void SetIntegrityConfig(const integrity::IntegrityConfig* config) {
    integrity_config_ = config;
  }
  void SetCorruptionTrigger(uint64_t min_detected = 1, int streak = 2) {
    corruption_min_detected_ = min_detected;
    corruption_streak_limit_ = streak;
  }
  // Replicated-cluster config applied to every Execute (non-owning; null =
  // single node). With a crash schedule in the fault plan, a streak of
  // invocations that each take >= `min_failovers` replica promotions means
  // node churn is steady-state, so re-compete the compilation under it (a
  // plan with fewer remote round trips rides out detection waits better).
  void SetClusterConfig(const farmem::ClusterConfig* config) { cluster_config_ = config; }
  void SetCrashTrigger(uint64_t min_failovers = 1, int streak = 2) {
    crash_min_failovers_ = min_failovers;
    crash_streak_limit_ = streak;
  }

  int optimization_rounds() const { return rounds_; }
  // Rounds specifically triggered by sustained fault-inflated overhead.
  int fault_reoptimizations() const { return fault_rounds_; }
  // Rounds specifically triggered by sustained corruption detection.
  int corruption_reoptimizations() const { return corruption_rounds_; }
  // Rounds specifically triggered by sustained node-crash failovers.
  int crash_reoptimizations() const { return crash_rounds_; }
  const CompiledProgram& current() const { return current_; }

 private:
  // One measured execution of `program` with `seed`; fills ratio.
  Invocation Execute(const CompiledProgram& program, uint64_t seed) const;
  void Reoptimize(uint64_t seed);

  const ir::Module* source_;
  OptimizeOptions options_;
  double degrade_factor_;
  CompiledProgram current_;
  bool compiled_ = false;
  double reference_overhead_ = 0.0;
  int rounds_ = 0;
  uint64_t invocations_ = 0;
  const net::FaultPlan* fault_plan_ = nullptr;
  double fault_ratio_threshold_ = 0.10;
  int fault_streak_limit_ = 2;
  int faulty_streak_ = 0;
  int fault_rounds_ = 0;
  const integrity::IntegrityConfig* integrity_config_ = nullptr;
  uint64_t corruption_min_detected_ = 0;  // 0 = trigger disabled
  int corruption_streak_limit_ = 2;
  int corruption_streak_ = 0;
  int corruption_rounds_ = 0;
  const farmem::ClusterConfig* cluster_config_ = nullptr;
  uint64_t crash_min_failovers_ = 0;  // 0 = trigger disabled
  int crash_streak_limit_ = 2;
  int crash_streak_ = 0;
  int crash_rounds_ = 0;
  // Deployment timeline for telemetry: advances by each invocation's
  // simulated duration, so adaptive instants form one monotonic track.
  sim::SimClock trace_clock_;
};

}  // namespace mira::pipeline

#endif  // MIRA_SRC_PIPELINE_ADAPTIVE_H_
