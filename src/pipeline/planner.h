// The planner: turns profiling results + static analysis into a cache plan
// and per-object compilation directives (paper §4.1–§4.3 and Fig 3).
//
// Selection follows the paper's iterative discipline: the highest
// `func_frac` of functions by cache performance overhead are analyzed
// (callees included implicitly), and within them the largest `obj_frac` of
// objects get their own sections; fractions grow by 10 points per
// iteration.

#ifndef MIRA_SRC_PIPELINE_PLANNER_H_
#define MIRA_SRC_PIPELINE_PLANNER_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/access_analysis.h"
#include "src/interp/interpreter.h"
#include "src/ir/ir.h"
#include "src/passes/compile_info.h"
#include "src/runtime/plan.h"
#include "src/sim/cost_model.h"

namespace mira::pipeline {

struct PlannerOptions {
  uint64_t local_bytes = 64 << 20;
  double func_frac = 0.10;
  double obj_frac = 0.10;
  // Ablation toggles (Fig 6/21).
  bool enable_sections = true;
  bool enable_prefetch = true;
  bool enable_evict_hints = true;
  bool enable_batching = true;
  bool enable_promote = true;
  bool enable_selective = true;
  bool enable_offload = true;
  // Fraction of local memory reserved for the generic swap section.
  double swap_reserve = 0.10;
  // Scopes selected by earlier iterations: the paper *widens* the analysis
  // scope each round, so previous selections are kept.
  std::set<std::string> seed_functions;
  std::set<std::string> seed_objects;
};

struct PlanDraft {
  runtime::CachePlan plan;
  passes::CompileInfoMap compile_info;
  std::set<std::string> selected_functions;
  std::set<std::string> selected_objects;
  std::set<std::string> offload_functions;
  // Plan section indices whose sizes must be determined by sampling + ILP.
  std::vector<uint32_t> sample_sections;
  // Scope-reduction bookkeeping for the §6.1 table.
  size_t total_functions = 0;
  size_t total_objects = 0;
};

PlanDraft DerivePlan(const ir::Module& module, const analysis::AccessAnalysis& access,
                     const interp::RunProfile& profile, const sim::CostModel& cost,
                     const PlannerOptions& options);

// The compiler's line-size choice for contiguous sections: large enough to
// amortize per-line dereference cost against the measured network, small
// enough to transfer efficiently (paper Fig 9's knee).
uint32_t ContiguousLineBytes(const sim::CostModel& cost);

uint32_t Pow2AtLeast(uint32_t v);

}  // namespace mira::pipeline

#endif  // MIRA_SRC_PIPELINE_PLANNER_H_
