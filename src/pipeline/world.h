// A "world" bundles one experiment's far-memory node, transport, and system
// backend. Benches and the pipeline create a fresh world per measured run
// so no cache state leaks between configurations.

#ifndef MIRA_SRC_PIPELINE_WORLD_H_
#define MIRA_SRC_PIPELINE_WORLD_H_

#include <memory>
#include <string>

#include "src/backends/backend.h"
#include "src/farmem/cluster.h"
#include "src/integrity/integrity.h"
#include "src/net/transport.h"
#include "src/runtime/plan.h"
#include "src/sim/cost_model.h"

namespace mira::pipeline {

enum class SystemKind { kNative, kFastSwap, kLeap, kAifm, kMira };

const char* SystemName(SystemKind k);

struct World {
  std::unique_ptr<farmem::FarMemoryNode> node;
  std::unique_ptr<net::Transport> net;
  std::unique_ptr<backends::Backend> backend;
  // Deterministic fault injector attached to `net` (null = fault-free).
  std::unique_ptr<net::FaultInjector> faults;
  // End-to-end integrity manager attached to `net` (null = unchecked).
  std::unique_ptr<integrity::IntegrityManager> integrity;
  // Replicated far-memory cluster over `node` plus extra owned nodes
  // (null = single-node world).
  std::unique_ptr<farmem::FarMemoryCluster> cluster;
};

// `local_bytes` is the local cache budget (ignored by kNative). The plan is
// only used by kMira.
World MakeWorld(SystemKind kind, uint64_t local_bytes, runtime::CachePlan plan = {},
                const sim::CostModel& cost = sim::CostModel::Default());

// Attaches a fresh injector for `plan` to the world's transport (owned by
// the world). Each attach restarts the fault schedule from the plan's seed,
// so repeated runs of the same (world-config, plan) pair are bit-identical.
void AttachFaults(World& world, const net::FaultPlan& plan);

// Attaches an integrity manager (owned by the world) to the world's
// transport: per-line checksums/versions verified on every fetch and
// writeback receipt, with the recovery ladder described in DESIGN.md §8.
void AttachIntegrity(World& world, const integrity::IntegrityConfig& config = {});

// Attaches a replicated cluster (owned by the world) built over the world's
// existing node (which becomes cluster node 0). All data-plane traffic —
// transport verbs, interpreter direct loads/stores, integrity verification —
// routes through the cluster afterwards. Order-independent with
// AttachIntegrity: whichever attaches second still ends up wired to the
// other.
void AttachCluster(World& world, const farmem::ClusterConfig& config);

}  // namespace mira::pipeline

#endif  // MIRA_SRC_PIPELINE_WORLD_H_
