#include "src/pipeline/planner.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/offload_cost.h"
#include "src/support/str.h"

namespace mira::pipeline {

uint32_t Pow2AtLeast(uint32_t v) {
  uint32_t p = 64;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

uint32_t ContiguousLineBytes(const sim::CostModel& cost) {
  // Balance: transfer time of one line ≈ a modest fraction of the RTT, so
  // the pipeline of prefetched lines stays ahead of consumption without
  // bloating each message. rtt*bw/4 ≈ 4.6 KiB on the default model → 4 KiB.
  const double target =
      static_cast<double>(cost.rdma_rtt_ns) * cost.network_bytes_per_ns / 4.0;
  uint32_t line = 512;
  while (static_cast<double>(line) * 2.0 <= target && line < 65536) {
    line <<= 1;
  }
  return line;
}

namespace {

// Prefetch distance in lines for contiguous access: cover one RTT of
// compute (§4.5 "one network round trip earlier than actual access").
uint32_t SeqPrefetchDistance(const sim::CostModel& cost, uint64_t body_ops, uint32_t line,
                             uint32_t elem) {
  const uint64_t per_elem_ns = std::max<uint64_t>(1, body_ops) * cost.compute_op_ns +
                               2 * cost.native_access_ns;
  const uint64_t per_line_ns = per_elem_ns * std::max<uint32_t>(1, line / std::max(1u, elem));
  const uint64_t d = cost.rdma_rtt_ns / std::max<uint64_t>(1, per_line_ns) + 1;
  return static_cast<uint32_t>(std::clamp<uint64_t>(d, 1, 16));
}

uint32_t IndirectPrefetchDistance(const sim::CostModel& cost, uint64_t body_ops) {
  const uint64_t per_iter_ns =
      std::max<uint64_t>(4, body_ops) * cost.compute_op_ns + 4 * cost.native_access_ns;
  const uint64_t d = cost.rdma_rtt_ns / std::max<uint64_t>(1, per_iter_ns) + 2;
  return static_cast<uint32_t>(std::clamp<uint64_t>(d, 4, 512));
}

}  // namespace

PlanDraft DerivePlan(const ir::Module& module, const analysis::AccessAnalysis& access,
                     const interp::RunProfile& profile, const sim::CostModel& cost,
                     const PlannerOptions& options) {
  PlanDraft draft;
  draft.total_functions = profile.funcs.size();
  draft.total_objects = profile.alloc_bytes.size();

  if (!options.enable_sections) {
    // Everything stays in the generic swap section.
    return draft;
  }

  // ---- Function selection: highest func_frac by cache overhead ratio.
  struct FuncRank {
    std::string name;
    double ratio;
  };
  std::vector<FuncRank> ranked;
  for (const auto& [name, fp] : profile.funcs) {
    if (fp.overhead_ns == 0) {
      continue;
    }
    const uint64_t rest = fp.inclusive_ns > fp.overhead_ns ? fp.inclusive_ns - fp.overhead_ns
                                                           : 1;
    ranked.push_back({name, static_cast<double>(fp.overhead_ns) / static_cast<double>(rest)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const FuncRank& a, const FuncRank& b) { return a.ratio > b.ratio; });
  draft.selected_functions = options.seed_functions;
  const size_t func_take = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(options.func_frac * static_cast<double>(
                                           std::max<size_t>(1, profile.funcs.size())))));
  size_t func_added = 0;
  for (const auto& fr : ranked) {
    if (func_added >= func_take) {
      break;
    }
    if (draft.selected_functions.insert(fr.name).second) {
      ++func_added;  // widening: each round admits the next-worst functions
    }
  }
  // Selecting a function implicitly selects all its callees (§4.1).
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& f : module.functions) {
      if (draft.selected_functions.count(f->name) == 0) {
        continue;
      }
      ir::WalkInstrs(f->body, [&](const ir::Instr& instr) {
        if (instr.kind == ir::OpKind::kCall || instr.kind == ir::OpKind::kOffloadCall) {
          const std::string& callee = module.functions[instr.callee]->name;
          if (draft.selected_functions.insert(callee).second) {
            grew = true;
          }
        }
      });
    }
  }

  // ---- Object selection: largest obj_frac among objects those functions
  // touch.
  std::set<std::string> candidates;
  for (const auto& fname : draft.selected_functions) {
    const auto& touched = access.ForFunction(fname).touched_objects;
    candidates.insert(touched.begin(), touched.end());
  }
  struct ObjRank {
    std::string name;
    uint64_t bytes;
  };
  std::vector<ObjRank> obj_ranked;
  for (const auto& obj : candidates) {
    const auto it = profile.alloc_bytes.find(obj);
    obj_ranked.push_back({obj, it == profile.alloc_bytes.end() ? 0 : it->second});
  }
  std::sort(obj_ranked.begin(), obj_ranked.end(),
            [](const ObjRank& a, const ObjRank& b) { return a.bytes > b.bytes; });
  draft.selected_objects = options.seed_objects;
  const size_t obj_take = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(options.obj_frac * static_cast<double>(std::max<size_t>(
                                           1, profile.alloc_bytes.size())))));
  size_t obj_added = 0;
  for (const auto& obj : obj_ranked) {
    if (obj_added >= obj_take) {
      break;
    }
    if (draft.selected_objects.insert(obj.name).second) {
      ++obj_added;  // widening: next-largest objects join each round
    }
  }

  // Interleaving relation (§4.4's no-conflict analysis): objects touched in
  // the same innermost loop form concurrent access streams. Grouping two
  // interleaved contiguous streams into one direct-mapped section would
  // ping-pong its slots, so such groups get a set-associative structure and
  // lose native-load promotion.
  std::map<const ir::Region*, std::set<std::string>> loop_objects;
  for (const auto& f : module.functions) {
    for (const auto& a : access.ForFunction(f->name).accesses) {
      if (a.loop_body == nullptr) {
        continue;
      }
      for (const auto& obj : a.objects) {
        loop_objects[a.loop_body].insert(obj);
      }
    }
  }
  auto interleaved = [&](const std::string& a, const std::string& b) {
    for (const auto& [loop, objs] : loop_objects) {
      if (objs.count(a) > 0 && objs.count(b) > 0) {
        return true;
      }
    }
    return false;
  };

  // ---- Per-object behavior → section configs, grouping similar patterns.
  const uint64_t avail = static_cast<uint64_t>(
      static_cast<double>(options.local_bytes) * (1.0 - options.swap_reserve));
  std::map<std::string, uint32_t> group_to_section;  // group key → plan index
  for (const auto& obj : draft.selected_objects) {
    const analysis::ObjectBehavior behavior =
        access.Summarize(obj, draft.selected_functions);
    passes::ObjectCompileInfo info;
    info.pattern = behavior.pattern;
    info.elem_bytes = std::max<uint32_t>(behavior.elem_bytes, 8);

    cache::SectionConfig config;
    config.name = obj;
    bool sample_size = false;
    switch (behavior.pattern) {
      case analysis::AccessPattern::kSequential:
      case analysis::AccessPattern::kStrided: {
        config.structure = cache::SectionStructure::kDirectMapped;
        config.line_bytes = behavior.pattern == analysis::AccessPattern::kSequential
                                ? ContiguousLineBytes(cost)
                                : Pow2AtLeast(info.elem_bytes);
        if (options.enable_prefetch) {
          info.prefetch_distance = SeqPrefetchDistance(cost, behavior.loop_body_ops,
                                                       config.line_bytes, info.elem_bytes);
          config.prefetch = behavior.pattern == analysis::AccessPattern::kSequential
                                ? cache::PrefetchKind::kSequential
                                : cache::PrefetchKind::kStrided;
          config.prefetch_distance = info.prefetch_distance;
        }
        info.promote = options.enable_promote;
        info.eviction_hints = options.enable_evict_hints;
        config.eviction_hints = info.eviction_hints;
        // Sequential sections need only a prefetch pipeline of lines (§4.3).
        config.size_bytes =
            static_cast<uint64_t>(config.line_bytes) * (2 * info.prefetch_distance + 8);
        break;
      }
      case analysis::AccessPattern::kIndirect: {
        config.structure = cache::SectionStructure::kSetAssociative;
        config.ways = 8;
        config.line_bytes = Pow2AtLeast(info.elem_bytes);
        if (options.enable_prefetch) {
          info.prefetch_distance = IndirectPrefetchDistance(cost, behavior.loop_body_ops);
          config.prefetch = cache::PrefetchKind::kIndirect;
          config.prefetch_distance = info.prefetch_distance;
        }
        sample_size = true;
        break;
      }
      case analysis::AccessPattern::kPointerChase:
      case analysis::AccessPattern::kUnknown: {
        config.structure = cache::SectionStructure::kFullyAssociative;
        config.line_bytes = Pow2AtLeast(info.elem_bytes);
        sample_size = true;
        break;
      }
    }
    info.line_bytes = config.line_bytes;

    // Selective transmission (§4.5): partial-structure access ⇒ two-sided.
    const double fraction = behavior.AccessedFraction();
    if (options.enable_selective && fraction < 0.5) {
      config.comm = cache::CommMethod::kTwoSided;
      config.transfer_fraction = fraction;
      config.gather_fields = static_cast<uint32_t>(behavior.fields.size());
    }

    // Group objects with identical pattern + geometry into one section.
    const std::string key = support::StrFormat(
        "%s/%u/%d", analysis::AccessPatternName(behavior.pattern), config.line_bytes,
        config.comm == cache::CommMethod::kTwoSided ? 1 : 0);
    auto group_it = group_to_section.find(key);
    uint32_t section_index;
    if (group_it == group_to_section.end()) {
      config.name = key;
      section_index = static_cast<uint32_t>(draft.plan.sections.size());
      draft.plan.sections.push_back(config);
      group_to_section[key] = section_index;
      if (sample_size) {
        draft.sample_sections.push_back(section_index);
      }
    } else {
      section_index = group_it->second;
      // Conflict check against current members of the group.
      auto& section = draft.plan.sections[section_index];
      bool conflicts = false;
      for (const auto& [member, idx] : draft.plan.object_to_section) {
        if (idx == section_index && interleaved(member, obj)) {
          conflicts = true;
          break;
        }
      }
      if (conflicts && section.structure == cache::SectionStructure::kDirectMapped) {
        section.structure = cache::SectionStructure::kSetAssociative;
        section.ways = 4;
        // Interleaved streams double the in-flight window the section must
        // hold; grow it and withdraw promotion (residency no longer proven).
        section.size_bytes *= 2;
        for (auto& [member, minfo] : draft.compile_info) {
          if (draft.plan.object_to_section.count(member) > 0 &&
              draft.plan.object_to_section.at(member) == section_index) {
            minfo.promote = false;
          }
        }
        info.promote = false;
      }
    }
    draft.plan.object_to_section[obj] = section_index;
    if (!behavior.has_writes) {
      draft.plan.discard_on_release[obj] = true;
    }
    draft.compile_info[obj] = info;
  }

  // Default sizes for sampled sections: an equal share of what's left.
  uint64_t fixed = 0;
  for (uint32_t i = 0; i < draft.plan.sections.size(); ++i) {
    bool sampled = false;
    for (const uint32_t s : draft.sample_sections) {
      sampled |= s == i;
    }
    if (!sampled) {
      fixed += draft.plan.sections[i].size_bytes;
    }
  }
  if (!draft.sample_sections.empty()) {
    const uint64_t rest = avail > fixed ? avail - fixed : 0;
    const uint64_t share =
        std::max<uint64_t>(rest / draft.sample_sections.size(), 64 * 1024);
    for (const uint32_t s : draft.sample_sections) {
      auto& section = draft.plan.sections[s];
      section.size_bytes = std::max<uint64_t>(
          share - share % section.line_bytes, static_cast<uint64_t>(section.line_bytes) * 4);
    }
  }

  // ---- Offload candidates (§4.8).
  if (options.enable_offload) {
    analysis::OffloadCostAnalysis offload(&module, &access, cost);
    std::map<std::string, uint64_t> traffic;
    for (const auto& [name, fp] : profile.funcs) {
      // Approximate bytes moved by the time spent in cache overhead at full
      // link utilization.
      traffic[name] = static_cast<uint64_t>(static_cast<double>(fp.overhead_ns) *
                                            cost.network_bytes_per_ns * 0.5);
    }
    offload.Run(traffic);
    const ir::Function* entry = module.functions.empty() ? nullptr : module.functions[0].get();
    for (const auto& [name, est] : offload.estimates()) {
      if (!est.candidate || est.benefit_ns <= static_cast<int64_t>(cost.rdma_rtt_ns)) {
        continue;
      }
      if (entry != nullptr && name == entry->name) {
        continue;
      }
      if (draft.selected_functions.count(name) == 0) {
        continue;
      }
      draft.offload_functions.insert(name);
    }
  }
  return draft;
}

}  // namespace mira::pipeline
