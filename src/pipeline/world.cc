#include "src/pipeline/world.h"

#include "src/backends/aifm_backend.h"
#include "src/backends/fastswap_backend.h"
#include "src/backends/leap_backend.h"
#include "src/backends/mira_backend.h"

namespace mira::pipeline {

const char* SystemName(SystemKind k) {
  switch (k) {
    case SystemKind::kNative:
      return "native";
    case SystemKind::kFastSwap:
      return "fastswap";
    case SystemKind::kLeap:
      return "leap";
    case SystemKind::kAifm:
      return "aifm";
    case SystemKind::kMira:
      return "mira";
  }
  return "?";
}

World MakeWorld(SystemKind kind, uint64_t local_bytes, runtime::CachePlan plan,
                const sim::CostModel& cost) {
  World w;
  w.node = std::make_unique<farmem::FarMemoryNode>();
  w.net = std::make_unique<net::Transport>(w.node.get(), cost);
  switch (kind) {
    case SystemKind::kNative:
      w.backend = std::make_unique<backends::NativeBackend>(w.node.get(), w.net.get());
      break;
    case SystemKind::kFastSwap:
      w.backend = std::make_unique<backends::FastSwapBackend>(w.node.get(), w.net.get(),
                                                              local_bytes);
      break;
    case SystemKind::kLeap:
      w.backend =
          std::make_unique<backends::LeapBackend>(w.node.get(), w.net.get(), local_bytes);
      break;
    case SystemKind::kAifm:
      w.backend =
          std::make_unique<backends::AifmBackend>(w.node.get(), w.net.get(), local_bytes);
      break;
    case SystemKind::kMira:
      w.backend = std::make_unique<backends::MiraBackend>(w.node.get(), w.net.get(),
                                                          local_bytes, std::move(plan));
      break;
  }
  return w;
}

void AttachFaults(World& world, const net::FaultPlan& plan) {
  world.faults = std::make_unique<net::FaultInjector>(plan);
  world.net->SetFaultInjector(world.faults.get());
}

void AttachIntegrity(World& world, const integrity::IntegrityConfig& config) {
  world.integrity = std::make_unique<integrity::IntegrityManager>(world.node.get(), config);
  world.net->SetIntegrity(world.integrity.get());
  if (world.cluster != nullptr) {
    world.integrity->SetCluster(world.cluster.get());
  }
}

void AttachCluster(World& world, const farmem::ClusterConfig& config) {
  world.cluster = std::make_unique<farmem::FarMemoryCluster>(world.node.get(), config);
  world.net->SetCluster(world.cluster.get());
  if (world.integrity != nullptr) {
    world.integrity->SetCluster(world.cluster.get());
  }
}

}  // namespace mira::pipeline
