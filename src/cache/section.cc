#include "src/cache/section.h"

#include <algorithm>

#include "src/integrity/integrity.h"
#include "src/support/check.h"
#include "src/support/str.h"

namespace mira::cache {

namespace {

integrity::IntegrityManager* ActiveIntegrity(const net::Transport* net) {
  return integrity::ActiveOrNull(net->integrity());
}

}  // namespace

void PublishSectionStats(telemetry::MetricsRegistry& registry, const std::string& prefix,
                         const SectionStats& stats) {
  registry.SetCounter(prefix + ".hits", stats.lines.hits);
  registry.SetCounter(prefix + ".misses", stats.lines.misses);
  registry.SetGauge(prefix + ".miss_rate", stats.lines.miss_rate());
  registry.SetCounter(prefix + ".runtime_ns", stats.runtime_ns);
  registry.SetCounter(prefix + ".stall_ns", stats.stall_ns);
  registry.SetCounter(prefix + ".evictions", stats.evictions);
  registry.SetCounter(prefix + ".hint_evictions", stats.hint_evictions);
  registry.SetCounter(prefix + ".writebacks", stats.writebacks);
  registry.SetCounter(prefix + ".prefetch.issued", stats.prefetches_issued);
  registry.SetCounter(prefix + ".prefetch.useful", stats.prefetched_hits);
  registry.SetCounter(prefix + ".prefetch.wasted", stats.prefetch_wasted);
  registry.SetCounter(prefix + ".prefetch.late_ns", stats.prefetch_late_ns);
  registry.SetGauge(prefix + ".prefetch.accuracy", stats.prefetch_accuracy());
  registry.SetCounter(prefix + ".inflight.joins", stats.inflight_joins);
  registry.SetCounter(prefix + ".inflight.join_wait_ns", stats.inflight_join_ns);
  registry.SetCounter(prefix + ".coalesced.fetches", stats.coalesced_fetches);
  registry.SetCounter(prefix + ".coalesced.lines", stats.coalesced_lines);
  registry.SetCounter(prefix + ".bytes_fetched", stats.bytes_fetched);
  registry.SetCounter(prefix + ".bytes_written_back", stats.bytes_written_back);
  registry.SetCounter(prefix + ".degraded_ns", stats.degraded_ns);
  registry.SetCounter(prefix + ".prefetch.aborted", stats.prefetch_aborted);
  registry.SetCounter(prefix + ".writebacks_requeued", stats.writebacks_requeued);
  registry.SetCounter(prefix + ".forced_sync_flushes", stats.forced_sync_flushes);
  registry.SetCounter(prefix + ".reliable_escalations", stats.reliable_escalations);
  registry.SetCounter(prefix + ".node_failovers", stats.node_failovers);
}

uint32_t Section::LaneTid() {
  if (lane_tid_ == 0) {
    lane_tid_ = sim::AllocateTid();
    telemetry::Trace().SetThreadName(lane_tid_, "section:" + config_.name);
  }
  return lane_tid_;
}

Section::Section(SectionConfig config, net::Transport* net)
    : config_(std::move(config)), net_(net) {
  MIRA_CHECK_MSG(config_.line_bytes > 0, "section line size must be positive");
  MIRA_CHECK_MSG(config_.num_lines() > 0, "section must hold at least one line");
  slots_.resize(config_.num_lines());
  pins_.resize(config_.num_lines(), 0);
  soft_pins_.resize(config_.num_lines(), 0);
  pending_writebacks_.reserve(config_.pending_writeback_limit);
}

void Section::Access(sim::SimClock& clk, uint64_t raddr, uint32_t len, bool write,
                     bool full_line_write) {
  const uint64_t first = LineOf(raddr);
  const uint64_t last = LineOf(raddr + (len > 0 ? len - 1 : 0));
  for (uint64_t line = first; line <= last; ++line) {
    AccessLine(clk, line, write, full_line_write);
  }
  // The data access itself.
  clk.Advance(net_->cost().native_access_ns);
}

void Section::AccessPromoted(sim::SimClock& clk, uint64_t raddr, uint32_t len, bool write) {
  const uint64_t first = LineOf(raddr);
  const uint64_t last = LineOf(raddr + (len > 0 ? len - 1 : 0));
  for (uint64_t line = first; line <= last; ++line) {
    const uint32_t slot = LookupSlot(line);
    if (slot != kNoSlot && slots_[slot].valid() && slots_[slot].tag == line) {
      LineMeta& m = slots_[slot];
      if (m.ready_at_ns > clk.now_ns()) {
        // Prefetch issued but not landed: honest stall.
        const uint64_t wait = m.ready_at_ns - clk.now_ns();
        stats_.stall_ns += wait;
        stats_.prefetch_late_ns += wait;
        clk.AdvanceTo(m.ready_at_ns);
        auto& prof = telemetry::Profiler();
        if (prof.enabled()) {
          prof.ChargeStall(clk, "prefetch_wait", config_.name, wait);
        }
      }
      if (m.prefetched) {
        ++stats_.prefetched_hits;
        m.prefetched = false;
        soft_pins_[slot] = 0;
      }
      stats_.lines.Hit();
      if (write) {
        m.dirty = true;
      }
      continue;
    }
    // Compiler mis-speculation: degrade to a demand access.
    AccessLine(clk, line, write, /*full_line_write=*/false);
  }
  clk.Advance(net_->cost().native_access_ns);
}

void Section::AccessLine(sim::SimClock& clk, uint64_t line, bool write, bool full_line_write) {
  clk.Advance(LookupCostNs());
  stats_.runtime_ns += LookupCostNs();
  const bool probed =
      probe_hi_ != 0 && line * config_.line_bytes >= probe_lo_ &&
      line * config_.line_bytes < probe_hi_;
  const uint32_t slot = LookupSlot(line);
  if (slot != kNoSlot && slots_[slot].valid() && slots_[slot].tag == line) {
    // Hit — possibly on an in-flight prefetch.
    if (probed) {
      probe_.Hit();
    }
    LineMeta& m = slots_[slot];
    if (m.ready_at_ns > clk.now_ns()) {
      const uint64_t wait = m.ready_at_ns - clk.now_ns();
      stats_.stall_ns += wait;
      stats_.prefetch_late_ns += wait;
      clk.AdvanceTo(m.ready_at_ns);
      auto& prof = telemetry::Profiler();
      if (prof.enabled()) {
        prof.ChargeStall(clk, "prefetch_wait", config_.name, wait);
      }
    }
    if (m.prefetched) {
      ++stats_.prefetched_hits;
      m.prefetched = false;
      soft_pins_[slot] = 0;
    }
    stats_.lines.Hit();
    m.last_use = ++use_counter_;
    m.evictable = false;  // re-used after a hint: un-mark
    if (write) {
      m.dirty = true;
    }
    OnTouch(slot);
    return;
  }
  // Miss.
  if (probed) {
    probe_.Miss();
  }
  stats_.lines.Miss();
  const uint32_t victim = ChooseSlot(line);
  MIRA_CHECK_MSG(victim != kNoSlot, "no evictable slot (all pinned?)");
  EvictSlot(clk, victim);
  LineMeta& m = slots_[victim];
  m.tag = line;
  m.last_use = ++use_counter_;
  m.dirty = write;
  m.evictable = false;
  m.prefetched = false;
  ++resident_;
  OnInsert(victim, line);
  MemoizeSlot(line, victim);
  clk.Advance(net_->cost().line_insert_ns);
  stats_.runtime_ns += net_->cost().line_insert_ns;
  if (write && full_line_write) {
    // Write covering the whole line: no fetch required (§4.5).
    m.ready_at_ns = clk.now_ns();
    return;
  }
  // MSHR join: a fetch covering this line may already be in flight — a
  // prefetched line whose frame was soft-evicted before the data landed, or
  // another logical thread's fetch for the same range. Adopt it and charge
  // only the residual latency instead of issuing a duplicate verb.
  const uint64_t line_raddr = line * config_.line_bytes;
  if (const uint64_t pending = net_->TryJoinRead(clk, line_raddr, config_.line_bytes);
      pending != 0 && JoinVerified(clk, line_raddr, config_.line_bytes)) {
    const uint64_t wait = pending > clk.now_ns() ? pending - clk.now_ns() : 0;
    ++stats_.inflight_joins;
    stats_.inflight_join_ns += wait;
    stats_.stall_ns += wait;
    m.ready_at_ns = pending;
    clk.AdvanceTo(pending);
    auto& join_prof = telemetry::Profiler();
    if (join_prof.enabled()) {
      join_prof.ChargeStall(clk, "inflight_wait", config_.name, wait);
    }
    return;
  }
  const uint64_t t0 = clk.now_ns();
  auto& prof = telemetry::Profiler();
  const bool profiled = prof.enabled();
  if (profiled) {
    prof.BeginStall(clk, "demand_fetch", config_.name);
  }
  const uint64_t done = FetchLineReliable(clk, line);
  clk.AdvanceTo(done);
  if (profiled) {
    prof.EndStall(clk);
  }
  m.ready_at_ns = done;
  stats_.stall_ns += clk.now_ns() - t0;
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    trace.CompleteOn(LaneTid(), t0, clk.now_ns() - t0, "cache." + config_.name + ".miss",
                     "cache",
                     support::StrFormat("{\"line\":%llu}",
                                        static_cast<unsigned long long>(line)));
  }
}

support::Result<uint64_t> Section::TryFetchLine(sim::SimClock& clk, uint64_t line,
                                                bool demand) {
  const uint64_t raddr = line * config_.line_bytes;
  uint32_t bytes = config_.line_bytes;
  if (config_.comm == CommMethod::kTwoSided && config_.transfer_fraction < 1.0) {
    // Selective transmission: the far CPU gathers only the accessed fields.
    bytes = std::max<uint32_t>(
        1, static_cast<uint32_t>(config_.transfer_fraction * config_.line_bytes));
    // Timing-only two-sided read; returns via clock, so run it on a scratch
    // clock for the async case.
    if (demand) {
      support::Status s =
          net_->TryTwoSidedReadSync(clk, raddr, nullptr, bytes, config_.gather_fields);
      if (!s.ok()) {
        return s;
      }
      stats_.bytes_fetched += bytes;  // fetched only on the successful attempt
      return clk.now_ns();
    }
    sim::SimClock shadow(clk.now_ns());
    support::Status s =
        net_->TryTwoSidedReadSync(shadow, raddr, nullptr, bytes, config_.gather_fields);
    if (!s.ok()) {
      return s;
    }
    stats_.bytes_fetched += bytes;
    return shadow.now_ns();
  }
  support::Result<uint64_t> r = net_->TryReadAsync(clk, raddr, nullptr, bytes);
  if (!r.ok()) {
    return r;
  }
  stats_.bytes_fetched += bytes;
  return r;
}

bool Section::JoinVerified(sim::SimClock& clk, uint64_t raddr, uint32_t len) {
  auto* integ = ActiveIntegrity(net_);
  if (integ == nullptr) {
    return true;
  }
  const auto verdict = integ->VerifyFetch(clk, raddr, raddr, len, net_->last_delivery());
  if (verdict == integrity::FetchVerdict::kClean ||
      verdict == integrity::FetchVerdict::kFatal) {
    // Fatal (quarantined) joins stand too, exactly like FetchLineReliable:
    // the interpreter surfaces kDataLoss before the data is consumed.
    return true;
  }
  if (verdict == integrity::FetchVerdict::kStale) {
    DrainPendingWritebacks(clk);
  }
  // Tainted shared fetch: one failure fails every waiter the same way. The
  // entry dies here, so this waiter and all later ones share the single
  // demand ladder the caller now runs (whose verify rounds heal the episode
  // this check opened).
  net_->DropInflight(raddr, len);
  return false;
}

uint64_t Section::FetchLineReliable(sim::SimClock& clk, uint64_t line) {
  const uint64_t raddr = line * config_.line_bytes;
  auto* integ = ActiveIntegrity(net_);
  auto& prof = telemetry::Profiler();
  // Heal window: spans each re-fetch attempt (and its verify) triggered by a
  // tainted/stale verdict, so heal time separates from the plain demand wait.
  bool healing = false;
  const auto end_heal = [&] {
    if (healing) {
      prof.EndStall(clk);
      healing = false;
    }
  };
  int heal_rounds = 0;
  for (int round = 0;; ++round) {
    support::Result<uint64_t> r = TryFetchLine(clk, line, /*demand=*/true);
    if (r.ok()) {
      if (integ == nullptr) {
        return r.value();
      }
      const auto verdict =
          integ->VerifyFetch(clk, raddr, raddr, config_.line_bytes, net_->last_delivery());
      if (verdict == integrity::FetchVerdict::kClean ||
          verdict == integrity::FetchVerdict::kFatal) {
        // Fatal (quarantined) deliveries return too: the interpreter
        // surfaces kDataLoss before the data is consumed.
        end_heal();
        return r.value();
      }
      if (verdict == integrity::FetchVerdict::kStale) {
        // The far copy lags a committed store: re-publish the queued
        // writebacks, then re-fetch.
        DrainPendingWritebacks(clk);
      }
      if (heal_rounds + 1 >= integ->config().max_refetch_rounds) {
        end_heal();
        break;  // escalate below
      }
      ++heal_rounds;
      integ->CountRefetchRound();
      if (prof.enabled() && !healing) {
        prof.BeginStall(clk, "integrity_heal", config_.name);
        healing = true;
      }
      continue;
    }
    if (r.status().code() == support::ErrorCode::kUnavailable) {
      // Far node down: degraded mode — wait the outage out rather than abort.
      WaitOutOutage(clk);
    } else if (r.status().code() == support::ErrorCode::kNodeFailed) {
      // Failover ladder: promote a surviving replica and re-issue against
      // it next round. With no survivor the range quarantines — kDataLoss
      // surfaces through the escalated fetch's integrity verdict.
      if (net_->RecoverNodeFailure(clk, raddr, config_.line_bytes).ok()) {
        ++stats_.node_failovers;
      } else if (integ != nullptr) {
        integ->QuarantineRange(raddr, config_.line_bytes);
      }
    }
    if (round + 1 >= config_.max_fault_rounds) {
      end_heal();
      break;
    }
  }
  end_heal();
  // Last rung of the ladder. A demand fetch cannot be dropped (the program
  // needs the data), so model operator-grade recovery with the infallible
  // verb, whose delivery is clean by construction.
  ++stats_.reliable_escalations;
  stats_.bytes_fetched += config_.line_bytes;
  const uint64_t done = net_->ReadAsync(clk, raddr, nullptr, config_.line_bytes);
  if (integ != nullptr) {
    integ->MarkHealed(raddr, /*escalated=*/true);
  }
  return done;
}

void Section::WaitOutOutage(sim::SimClock& clk) {
  const uint64_t until = net_->NextAvailableNs(clk.now_ns());
  if (until <= clk.now_ns()) {
    return;
  }
  const uint64_t t0 = clk.now_ns();
  const uint64_t span = until - t0;
  stats_.degraded_ns += span;
  stats_.stall_ns += span;
  net_->RecordOutageWait(span);
  clk.AdvanceTo(until);
  auto& prof = telemetry::Profiler();
  if (prof.enabled()) {
    prof.ChargeStall(clk, "outage_wait", config_.name, span);
  }
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    trace.CompleteOn(LaneTid(), t0, span, "cache." + config_.name + ".degraded", "cache",
                     "{}");
  }
}

void Section::WritebackLine(sim::SimClock& clk, uint64_t raddr) {
  support::Result<uint64_t> r =
      net_->TryWriteAsync(clk, raddr, nullptr, config_.line_bytes);
  if (r.ok()) {
    auto* integ = ActiveIntegrity(net_);
    if (integ == nullptr ||
        integ->CommitWriteback(clk, raddr, config_.line_bytes, net_->last_delivery())) {
      last_writeback_done_ns_ = std::max(last_writeback_done_ns_, r.value());
      ++stats_.writebacks;
      stats_.bytes_written_back += config_.line_bytes;
      return;
    }
    // The far node rejected the frame (wire corruption): fall through to the
    // requeue path; the reliable drain retransmits.
  }
  // Write-back throttled degraded mode: hold the failed writeback; once the
  // queue saturates, force a synchronous drain so dirty data is bounded.
  pending_writebacks_.push_back(raddr);
  ++stats_.writebacks_requeued;
  if (pending_writebacks_.size() >= config_.pending_writeback_limit) {
    ++stats_.forced_sync_flushes;
    DrainPendingWritebacks(clk);
  }
}

void Section::DrainPendingWritebacks(sim::SimClock& clk) {
  if (pending_writebacks_.empty()) {
    return;
  }
  auto& prof = telemetry::Profiler();
  const bool profiled = prof.enabled();
  if (profiled) {
    prof.BeginStall(clk, "writeback_drain", config_.name);
  }
  auto* integ = ActiveIntegrity(net_);
  // A torn drain applies only the first `tear_at` lines at the far node; the
  // rest complete on the wire but are never applied. The burst receipt audit
  // below catches them through the version vector and re-publishes.
  const size_t tear_at =
      integ != nullptr ? net_->TearPoint(pending_writebacks_.size()) : pending_writebacks_.size();
  size_t applied = 0;
  std::vector<uint64_t> torn;
  while (!pending_writebacks_.empty()) {
    const uint64_t raddr = pending_writebacks_.back();
    const bool tear = applied >= tear_at;
    for (int round = 0;; ++round) {
      // Async drain: the verb only charges issue CPU here and completes on
      // the link in the background, so the drain overlaps whatever demand
      // fetch interrupted it. Sync points (FlushAll / Release) still wait on
      // last_writeback_done_ns_, so durability ordering is unchanged.
      support::Result<uint64_t> r =
          net_->TryWriteAsync(clk, raddr, nullptr, config_.line_bytes);
      if (r.ok()) {
        if (tear || integ == nullptr ||
            integ->CommitWriteback(clk, raddr, config_.line_bytes, net_->last_delivery())) {
          last_writeback_done_ns_ = std::max(last_writeback_done_ns_, r.value());
          break;
        }
        // Frame rejected at the far node: retransmit (counts as a round).
      } else if (r.status().code() == support::ErrorCode::kUnavailable) {
        WaitOutOutage(clk);
      } else if (r.status().code() == support::ErrorCode::kNodeFailed) {
        if (net_->RecoverNodeFailure(clk, raddr, config_.line_bytes).ok()) {
          ++stats_.node_failovers;
        } else if (integ != nullptr) {
          integ->QuarantineRange(raddr, config_.line_bytes);
        }
      }
      if (round + 1 >= config_.max_fault_rounds) {
        ++stats_.reliable_escalations;
        last_writeback_done_ns_ = std::max(
            last_writeback_done_ns_,
            net_->WriteAsync(clk, raddr, nullptr, config_.line_bytes));
        if (!tear && integ != nullptr) {
          integ->ForceCommit(raddr, config_.line_bytes);
        }
        break;
      }
    }
    if (tear) {
      integ->RecordTorn(raddr, config_.line_bytes);
      torn.push_back(raddr);
    }
    ++applied;
    pending_writebacks_.pop_back();
    ++stats_.writebacks;
    stats_.bytes_written_back += config_.line_bytes;
  }
  // Burst receipt audit: the far node acks the burst against its version
  // vector, exposing the torn suffix; re-publish those lines through the
  // reliable verb immediately.
  for (const uint64_t raddr : torn) {
    net_->WriteSync(clk, raddr, nullptr, config_.line_bytes);
    ++stats_.writebacks;
    stats_.bytes_written_back += config_.line_bytes;
    integ->ForceCommit(raddr, config_.line_bytes);  // closes the torn episode healed
  }
  if (profiled) {
    prof.EndStall(clk);
  }
}

void Section::EvictSlot(sim::SimClock& clk, uint32_t slot) {
  LineMeta& m = slots_[slot];
  if (!m.valid()) {
    return;
  }
  ++stats_.evictions;
  if (m.evictable) {
    ++stats_.hint_evictions;
  }
  if (soft_pins_[slot] != 0) {
    ++stats_.soft_evictions;
  }
  if (m.prefetched) {
    // A prefetched line leaving the cache before its first use: the fetch
    // was pure waste (3PO's accuracy denominator).
    ++stats_.prefetch_wasted;
  }
  if (m.dirty) {
    // Asynchronous writeback: costs issue CPU; wire time overlaps compute
    // but still occupies the shared link.
    clk.Advance(net_->cost().flush_issue_ns);
    stats_.runtime_ns += net_->cost().flush_issue_ns;
    WritebackLine(clk, m.tag * config_.line_bytes);
  }
  clk.Advance(net_->cost().line_evict_ns);
  stats_.runtime_ns += net_->cost().line_evict_ns;
  OnInvalidate(slot, m.tag);
  soft_pins_[slot] = 0;
  m.Invalidate();
  MIRA_CHECK(resident_ > 0);
  --resident_;
}

void Section::AccessBatch(sim::SimClock& clk,
                          const std::vector<std::pair<uint64_t, uint32_t>>& accesses,
                          bool write) {
  // Phase 1: identify the distinct missing lines, reserving slots. Misses
  // covered by an in-flight fetch join it (MSHR) instead of re-fetching.
  std::vector<net::Segment> segs;
  std::vector<uint32_t> filled_slots;
  uint64_t joined_done = 0;
  uint64_t late_hit_done = 0;
  for (const auto& [raddr, len] : accesses) {
    const uint64_t first = LineOf(raddr);
    const uint64_t last = LineOf(raddr + (len > 0 ? len - 1 : 0));
    for (uint64_t line = first; line <= last; ++line) {
      clk.Advance(LookupCostNs());
      stats_.runtime_ns += LookupCostNs();
      const uint32_t slot = LookupSlot(line);
      if (slot != kNoSlot && slots_[slot].valid() && slots_[slot].tag == line) {
        LineMeta& m = slots_[slot];
        if (m.ready_at_ns > clk.now_ns()) {
          // Hit on an in-flight (prefetched) line: the batch consumes the
          // data, so the residual latency is an honest stall — but it
          // overlaps the batch's own gather below, exactly like an MSHR
          // join. (This wait was silently skipped before — in-flight lines
          // looked free to batched accesses while charging every other
          // path.)
          late_hit_done = std::max(late_hit_done, m.ready_at_ns);
        }
        if (m.prefetched) {
          ++stats_.prefetched_hits;
          m.prefetched = false;
          soft_pins_[slot] = 0;
        }
        stats_.lines.Hit();
        m.last_use = ++use_counter_;
        if (write) {
          m.dirty = true;
        }
        OnTouch(slot);
        continue;
      }
      stats_.lines.Miss();
      const uint32_t victim = ChooseSlot(line);
      MIRA_CHECK_MSG(victim != kNoSlot, "no evictable slot for batch fetch");
      EvictSlot(clk, victim);
      LineMeta& m = slots_[victim];
      m.tag = line;
      m.last_use = ++use_counter_;
      m.dirty = write;
      m.evictable = false;
      m.prefetched = false;
      ++resident_;
      OnInsert(victim, line);
      MemoizeSlot(line, victim);
      clk.Advance(net_->cost().line_insert_ns);
      stats_.runtime_ns += net_->cost().line_insert_ns;
      const uint64_t line_raddr = line * config_.line_bytes;
      if (const uint64_t pending = net_->TryJoinRead(clk, line_raddr, config_.line_bytes);
          pending != 0 && JoinVerified(clk, line_raddr, config_.line_bytes)) {
        // Duplicate suppressed: the line rides the fetch already in flight
        // (no segment, no bytes); the batch waits for it below.
        ++stats_.inflight_joins;
        m.ready_at_ns = pending;
        joined_done = std::max(joined_done, pending);
        continue;
      }
      segs.push_back(net::Segment{line_raddr, nullptr, config_.line_bytes});
      filled_slots.push_back(victim);
      stats_.bytes_fetched += config_.line_bytes;
    }
  }
  // Phase 2: one gather message for everything that missed.
  if (!segs.empty()) {
    if (segs.size() >= 2) {
      ++stats_.coalesced_fetches;
      stats_.coalesced_lines += segs.size();
    }
    auto* integ = ActiveIntegrity(net_);
    const uint64_t gather_key = segs.front().raddr;  // episode key for the message
    const uint64_t t0 = clk.now_ns();
    auto& prof = telemetry::Profiler();
    const bool profiled = prof.enabled();
    if (profiled) {
      prof.BeginStall(clk, "batch_fetch", config_.name);
    }
    bool healing = false;
    const auto end_heal = [&] {
      if (healing) {
        prof.EndStall(clk);
        healing = false;
      }
    };
    uint64_t done = 0;
    int heal_rounds = 0;
    for (int round = 0;; ++round) {
      support::Result<uint64_t> r = net_->TryReadGatherAsync(clk, segs);
      if (r.ok()) {
        if (integ == nullptr) {
          done = r.value();
          break;
        }
        // Verify every delivered segment; the whole message shares one
        // delivery (and one corruption episode).
        const net::Delivery delivery = net_->last_delivery();
        auto worst = integrity::FetchVerdict::kClean;
        bool first_seg = true;
        for (const auto& s : segs) {
          const auto v = integ->VerifyFetch(clk, gather_key, s.raddr, s.len,
                                            first_seg ? delivery : net::Delivery{});
          first_seg = false;
          if (v == integrity::FetchVerdict::kFatal) {
            worst = v;
            break;
          }
          if (v == integrity::FetchVerdict::kStale ||
              (v == integrity::FetchVerdict::kRetry &&
               worst == integrity::FetchVerdict::kClean)) {
            worst = v;
          }
        }
        if (worst == integrity::FetchVerdict::kClean ||
            worst == integrity::FetchVerdict::kFatal) {
          end_heal();
          done = r.value();
          break;
        }
        if (worst == integrity::FetchVerdict::kStale) {
          DrainPendingWritebacks(clk);
        }
        if (heal_rounds + 1 >= integ->config().max_refetch_rounds) {
          end_heal();
          ++stats_.reliable_escalations;
          done = net_->ReadGatherAsync(clk, segs);
          integ->MarkHealed(gather_key, /*escalated=*/true);
          break;
        }
        ++heal_rounds;
        integ->CountRefetchRound();
        if (profiled && !healing) {
          prof.BeginStall(clk, "integrity_heal", config_.name);
          healing = true;
        }
        continue;
      }
      if (r.status().code() == support::ErrorCode::kUnavailable) {
        WaitOutOutage(clk);
      } else if (r.status().code() == support::ErrorCode::kNodeFailed) {
        // One dead segment fails the whole message; recover every segment
        // (promotion is a no-op for chunks whose primary is healthy).
        bool recovered = true;
        for (const auto& seg : segs) {
          if (!net_->RecoverNodeFailure(clk, seg.raddr, seg.len).ok()) {
            recovered = false;
            if (integ != nullptr) {
              integ->QuarantineRange(seg.raddr, seg.len);
            }
          }
        }
        if (recovered) {
          ++stats_.node_failovers;
        }
      }
      if (round + 1 >= config_.max_fault_rounds) {
        end_heal();
        ++stats_.reliable_escalations;
        done = net_->ReadGatherAsync(clk, segs);
        if (integ != nullptr) {
          integ->MarkHealed(gather_key, /*escalated=*/true);
        }
        break;
      }
    }
    end_heal();
    clk.AdvanceTo(done);
    if (profiled) {
      prof.EndStall(clk);
    }
    stats_.stall_ns += clk.now_ns() - t0;
    for (const uint32_t slot : filled_slots) {
      slots_[slot].ready_at_ns = done;
    }
    auto& trace = telemetry::Trace();
    if (trace.enabled()) {
      trace.CompleteOn(LaneTid(), t0, clk.now_ns() - t0,
                       "cache." + config_.name + ".batch_miss", "cache",
                       support::StrFormat("{\"lines\":%zu}", segs.size()));
    }
  }
  // Phase 3: the data accesses themselves.
  clk.Advance(accesses.size() * net_->cost().native_access_ns);
  // Lines that were already in flight when the batch began — prefetched
  // lines it hit and fetches it joined (MSHR): the batch consumes lines as
  // they land, so it computes on the ready ones while a late one finishes,
  // and stalls only for whatever residual outlives both the gather and the
  // batch's own compute (usually nothing — those fetches started earlier).
  if (late_hit_done > clk.now_ns()) {
    const uint64_t wait = late_hit_done - clk.now_ns();
    stats_.stall_ns += wait;
    stats_.prefetch_late_ns += wait;
    clk.AdvanceTo(late_hit_done);
    auto& prof = telemetry::Profiler();
    if (prof.enabled()) {
      prof.ChargeStall(clk, "prefetch_wait", config_.name, wait);
    }
  }
  if (joined_done > clk.now_ns()) {
    const uint64_t wait = joined_done - clk.now_ns();
    stats_.stall_ns += wait;
    stats_.inflight_join_ns += wait;
    clk.AdvanceTo(joined_done);
    auto& prof = telemetry::Profiler();
    if (prof.enabled()) {
      prof.ChargeStall(clk, "inflight_wait", config_.name, wait);
    }
  }
}

void Section::PrefetchInserted(sim::SimClock& clk, uint64_t line, uint32_t slot,
                               uint64_t ready_at_ns) {
  LineMeta& m = slots_[slot];
  m.ready_at_ns = ready_at_ns;
  ++stats_.prefetches_issued;
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    trace.InstantOn(LaneTid(), clk.now_ns(), "cache." + config_.name + ".prefetch", "cache",
                    support::StrFormat("{\"line\":%llu,\"ready_at_ns\":%llu}",
                                       static_cast<unsigned long long>(line),
                                       static_cast<unsigned long long>(m.ready_at_ns)));
  }
}

void Section::PrefetchAborted(sim::SimClock& clk, uint64_t line, uint32_t slot) {
  // Hand the reserved slot back and move on. The line downgrades to a
  // demand fetch at its first real access — correctness is unaffected, only
  // the latency hiding is lost (and, for tainted discards, the open
  // integrity episode heals at that verified demand fetch or at the final
  // audit if the line is never touched again).
  LineMeta& m = slots_[slot];
  OnInvalidate(slot, m.tag);
  soft_pins_[slot] = 0;
  m.Invalidate();
  MIRA_CHECK(resident_ > 0);
  --resident_;
  ++stats_.prefetch_aborted;
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    trace.InstantOn(LaneTid(), clk.now_ns(), "cache." + config_.name + ".prefetch_aborted",
                    "cache",
                    support::StrFormat("{\"line\":%llu}",
                                       static_cast<unsigned long long>(line)));
  }
}

void Section::Prefetch(sim::SimClock& clk, uint64_t raddr, uint32_t len) {
  const uint64_t first = LineOf(raddr);
  const uint64_t last = LineOf(raddr + (len > 0 ? len - 1 : 0));
  // Selective transmission (two-sided partial reads) keeps the per-line
  // verb: the far CPU gathers fields per line, and merging lines into one
  // message would change the modeled transfer shape.
  const bool coalescible =
      !(config_.comm == CommMethod::kTwoSided && config_.transfer_fraction < 1.0);
  // Phase 1: reserve a slot per missing line — victim choice, eviction, and
  // issue CPU are charged per line exactly as the serial path always did —
  // and insert the line as in-flight so later lines in this same burst see
  // it as resident.
  std::vector<std::pair<uint64_t, uint32_t>> pending;  // (line, slot)
  for (uint64_t line = first; line <= last; ++line) {
    if (FindSlot(line) != kNoSlot) {
      continue;  // already resident or in flight
    }
    const uint32_t victim = ChooseSlot(line);
    if (victim == kNoSlot) {
      break;  // nothing evictable; drop the rest of the burst
    }
    EvictSlot(clk, victim);
    // A tiny section can be forced to soft-evict a line reserved earlier in
    // this very burst; its pending entry died with the slot.
    for (size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].second == victim) {
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    clk.Advance(net_->cost().prefetch_issue_ns);
    stats_.runtime_ns += net_->cost().prefetch_issue_ns;
    LineMeta& m = slots_[victim];
    m.tag = line;
    m.last_use = ++use_counter_;
    m.dirty = false;
    m.evictable = false;
    m.prefetched = true;
    m.ready_at_ns = clk.now_ns();  // provisional; set when the fetch issues
    ++resident_;
    soft_pins_[victim] = 1;
    OnInsert(victim, line);
    pending.push_back({line, victim});
  }
  if (pending.empty()) {
    return;
  }
  auto* integ = ActiveIntegrity(net_);
  // Phase 2, single line (or non-coalescible section): the historical
  // one-verb-per-line path, bit-identical to the serial issue.
  if (!coalescible || pending.size() == 1) {
    for (const auto& [line, slot] : pending) {
      const support::Result<uint64_t> fetch = TryFetchLine(clk, line, /*demand=*/false);
      if (!fetch.ok()) {
        PrefetchAborted(clk, line, slot);
        continue;
      }
      if (integ != nullptr) {
        const uint64_t line_raddr = line * config_.line_bytes;
        const auto verdict = integ->VerifyFetch(clk, line_raddr, line_raddr,
                                                config_.line_bytes, net_->last_delivery());
        if (verdict == integrity::FetchVerdict::kRetry ||
            verdict == integrity::FetchVerdict::kStale) {
          // Tainted prefetch: discard the copy rather than retry, and kill
          // its in-flight entry so no demand miss joins the bad fetch.
          net_->DropInflight(line_raddr, config_.line_bytes);
          PrefetchAborted(clk, line, slot);
          continue;
        }
      }
      PrefetchInserted(clk, line, slot, fetch.value());
    }
    return;
  }
  // Phase 2, coalesced: every pending line rides ONE scatter-gather verb —
  // one per-message CPU charge, one link occupancy, one RTT — instead of a
  // doorbell ring per line.
  std::vector<net::Segment> segs;
  segs.reserve(pending.size());
  for (const auto& [line, slot] : pending) {
    segs.push_back(net::Segment{line * config_.line_bytes, nullptr, config_.line_bytes});
  }
  std::vector<uint64_t> seg_done;
  const support::Result<uint64_t> fetch = net_->TryReadGatherAsync(clk, segs, &seg_done);
  if (!fetch.ok()) {
    // The whole message faulted out: every line in the burst aborts, just
    // as each would have under per-line issue. First demand access re-fetches.
    for (const auto& [line, slot] : pending) {
      PrefetchAborted(clk, line, slot);
    }
    return;
  }
  ++stats_.coalesced_fetches;
  stats_.coalesced_lines += pending.size();
  stats_.bytes_fetched += pending.size() * config_.line_bytes;
  // One message, one delivery: the first segment carries the wire taint
  // (one corruption episode per message, mirroring AccessBatch); every line
  // still gets its own per-line verdict so a discard stays line-granular.
  net::Delivery delivery = net_->last_delivery();
  for (size_t i = 0; i < pending.size(); ++i) {
    const auto [line, slot] = pending[i];
    if (integ != nullptr) {
      const uint64_t line_raddr = line * config_.line_bytes;
      const auto verdict =
          integ->VerifyFetch(clk, line_raddr, line_raddr, config_.line_bytes, delivery);
      delivery = net::Delivery{};
      if (verdict == integrity::FetchVerdict::kRetry ||
          verdict == integrity::FetchVerdict::kStale) {
        net_->DropInflight(line_raddr, config_.line_bytes);
        PrefetchAborted(clk, line, slot);
        continue;
      }
    }
    // Each line is ready when its own segment's bytes land, not when the
    // whole message does — coalescing must not delay the first line.
    PrefetchInserted(clk, line, slot, seg_done[i]);
  }
}

void Section::EvictHint(sim::SimClock& clk, uint64_t raddr, uint32_t len) {
  const uint64_t first = LineOf(raddr);
  const uint64_t last = LineOf(raddr + (len > 0 ? len - 1 : 0));
  for (uint64_t line = first; line <= last; ++line) {
    const uint32_t slot = FindSlot(line);
    if (slot == kNoSlot || !slots_[slot].valid()) {
      continue;
    }
    LineMeta& m = slots_[slot];
    clk.Advance(net_->cost().flush_issue_ns);
    stats_.runtime_ns += net_->cost().flush_issue_ns;
    if (m.dirty) {
      WritebackLine(clk, m.tag * config_.line_bytes);
      m.dirty = false;  // requeued on fault; the queue now owns the write
    }
    m.evictable = true;
    OnEvictHint(slot);
  }
}

void Section::Pin(uint64_t raddr, uint32_t len) {
  const uint64_t first = LineOf(raddr);
  const uint64_t last = LineOf(raddr + (len > 0 ? len - 1 : 0));
  for (uint64_t line = first; line <= last; ++line) {
    const uint32_t slot = FindSlot(line);
    if (slot != kNoSlot) {
      ++pins_[slot];
    }
  }
}

void Section::Unpin(uint64_t raddr, uint32_t len) {
  const uint64_t first = LineOf(raddr);
  const uint64_t last = LineOf(raddr + (len > 0 ? len - 1 : 0));
  for (uint64_t line = first; line <= last; ++line) {
    const uint32_t slot = FindSlot(line);
    if (slot != kNoSlot && pins_[slot] > 0) {
      --pins_[slot];
    }
  }
}

void Section::FlushAll(sim::SimClock& clk) {
  for (auto& m : slots_) {
    if (m.valid() && m.dirty) {
      clk.Advance(net_->cost().flush_issue_ns);
      stats_.runtime_ns += net_->cost().flush_issue_ns;
      WritebackLine(clk, m.tag * config_.line_bytes);
      m.dirty = false;
    }
  }
  // A flush must leave nothing queued: push any fault-requeued writebacks
  // through the reliable path before declaring the section clean.
  DrainPendingWritebacks(clk);
  // Flush is a synchronization point (e.g., before an offloaded call).
  if (last_writeback_done_ns_ > clk.now_ns()) {
    const uint64_t wait = last_writeback_done_ns_ - clk.now_ns();
    stats_.stall_ns += wait;
    clk.AdvanceTo(last_writeback_done_ns_);
    auto& prof = telemetry::Profiler();
    if (prof.enabled()) {
      prof.ChargeStall(clk, "writeback_flush", config_.name, wait);
    }
  }
}

void Section::Release(sim::SimClock& clk, bool discard) {
  if (!discard) {
    FlushAll(clk);
  } else {
    // Read-only scope: dirty data is discarded by contract, including any
    // writebacks still queued from faulted attempts.
    pending_writebacks_.clear();
  }
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].valid()) {
      if (slots_[slot].prefetched) {
        ++stats_.prefetch_wasted;  // dropped at scope end without a use
      }
      OnInvalidate(slot, slots_[slot].tag);
      slots_[slot].Invalidate();
    }
    pins_[slot] = 0;
    soft_pins_[slot] = 0;
  }
  resident_ = 0;
}

// ---------------- DirectMappedSection ----------------

DirectMappedSection::DirectMappedSection(SectionConfig config, net::Transport* net)
    : Section(std::move(config), net) {}

uint64_t DirectMappedSection::LookupCostNs() const {
  return net_->cost().cache_lookup_direct_ns;
}

uint32_t DirectMappedSection::FindSlot(uint64_t line) const {
  const uint32_t slot = static_cast<uint32_t>(line % slots_.size());
  return (slots_[slot].valid() && slots_[slot].tag == line) ? slot : kNoSlot;
}

uint32_t DirectMappedSection::ChooseSlot(uint64_t line) {
  const uint32_t slot = static_cast<uint32_t>(line % slots_.size());
  return pins_[slot] == 0 ? slot : kNoSlot;
}

// ---------------- SetAssociativeSection ----------------

SetAssociativeSection::SetAssociativeSection(SectionConfig config, net::Transport* net)
    : Section(std::move(config), net) {
  const uint32_t ways = std::max<uint32_t>(1, config_.ways);
  sets_ = std::max<uint32_t>(1, static_cast<uint32_t>(slots_.size()) / ways);
  config_.ways = ways;
}

uint64_t SetAssociativeSection::LookupCostNs() const {
  return net_->cost().cache_lookup_setassoc_ns;
}

uint32_t SetAssociativeSection::FindSlot(uint64_t line) const {
  const uint32_t set = static_cast<uint32_t>(line % sets_);
  const uint32_t base = set * config_.ways;
  for (uint32_t w = 0; w < config_.ways && base + w < slots_.size(); ++w) {
    if (slots_[base + w].valid() && slots_[base + w].tag == line) {
      return base + w;
    }
  }
  return kNoSlot;
}

uint32_t SetAssociativeSection::ChooseSlot(uint64_t line) {
  const uint32_t set = static_cast<uint32_t>(line % sets_);
  const uint32_t base = set * config_.ways;
  uint32_t victim = kNoSlot;
  uint64_t oldest = UINT64_MAX;
  uint32_t soft_victim = kNoSlot;
  uint64_t soft_oldest = UINT64_MAX;
  for (uint32_t w = 0; w < config_.ways && base + w < slots_.size(); ++w) {
    const uint32_t s = base + w;
    if (pins_[s] != 0) {
      continue;
    }
    if (!slots_[s].valid()) {
      return s;
    }
    if (slots_[s].evictable) {
      return s;  // hint-marked lines evicted first
    }
    if (soft_pins_[s] != 0) {
      // In-flight prefetched line: last resort only.
      if (slots_[s].last_use < soft_oldest) {
        soft_oldest = slots_[s].last_use;
        soft_victim = s;
      }
      continue;
    }
    if (slots_[s].last_use < oldest) {
      oldest = slots_[s].last_use;
      victim = s;
    }
  }
  return victim != kNoSlot ? victim : soft_victim;
}

// ---------------- FullyAssociativeSection ----------------

FullyAssociativeSection::FullyAssociativeSection(SectionConfig config, net::Transport* net)
    : Section(std::move(config), net), lru_(config_.num_lines()) {
  free_slots_.reserve(slots_.size());
  for (uint32_t s = static_cast<uint32_t>(slots_.size()); s > 0; --s) {
    free_slots_.push_back(s - 1);
  }
  evictable_queue_.reserve(slots_.size());
  map_.Reserve(slots_.size());
}

uint64_t FullyAssociativeSection::LookupCostNs() const {
  return net_->cost().cache_lookup_fullassoc_ns;
}

uint32_t FullyAssociativeSection::FindSlot(uint64_t line) const {
  // kNotFound and kNoSlot are both UINT32_MAX, so a miss maps through
  // directly; pinned by a static_assert below.
  return map_.Find(line);
}

static_assert(support::FlatMap64::kNotFound == UINT32_MAX,
              "FlatMap64 miss sentinel must equal Section::kNoSlot");

uint32_t FullyAssociativeSection::ChooseSlot(uint64_t line) {
  // OnInvalidate pushes every evicted slot here, but eviction is normally
  // followed by immediate reuse of the same slot — such entries are stale
  // (the slot holds a valid line again) and must be discarded on pop, or a
  // single slot would be handed out repeatedly while the rest of the cache
  // sits idle.
  while (!free_slots_.empty()) {
    const uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    if (!slots_[s].valid()) {
      return s;
    }
  }
  // Evictable-marked lines first.
  while (!evictable_queue_.empty()) {
    const uint32_t s = evictable_queue_.back();
    evictable_queue_.pop_back();
    if (slots_[s].valid() && slots_[s].evictable && pins_[s] == 0) {
      return s;
    }
  }
  return lru_.ChooseVictim(pins_, soft_pins_);
}

void FullyAssociativeSection::OnInsert(uint32_t slot, uint64_t line) {
  map_.Insert(line, slot);
  lru_.OnInsert(slot);
}

void FullyAssociativeSection::OnTouch(uint32_t slot) { lru_.OnTouch(slot); }

void FullyAssociativeSection::OnInvalidate(uint32_t slot, uint64_t line) {
  map_.Erase(line);
  lru_.Remove(slot);
  free_slots_.push_back(slot);
}

std::unique_ptr<Section> MakeSection(const SectionConfig& config, net::Transport* net) {
  switch (config.structure) {
    case SectionStructure::kDirectMapped:
      return std::make_unique<DirectMappedSection>(config, net);
    case SectionStructure::kSetAssociative:
      return std::make_unique<SetAssociativeSection>(config, net);
    case SectionStructure::kFullyAssociative:
      return std::make_unique<FullyAssociativeSection>(config, net);
    case SectionStructure::kSwap:
      MIRA_UNREACHABLE("use SwapSection for kSwap configs");
  }
  MIRA_UNREACHABLE("unknown section structure");
}

}  // namespace mira::cache
