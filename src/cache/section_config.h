// Cache-section configuration vocabulary (paper §3 step 2, §4.2).
//
// A section is a region of local DRAM dedicated to one access pattern. The
// analysis pipeline produces one SectionConfig per pattern; the runtime
// instantiates a Section from it.

#ifndef MIRA_SRC_CACHE_SECTION_CONFIG_H_
#define MIRA_SRC_CACHE_SECTION_CONFIG_H_

#include <cstdint>
#include <string>

namespace mira::cache {

enum class SectionStructure {
  kDirectMapped,
  kSetAssociative,
  kFullyAssociative,
  kSwap,  // transparent 4 KB page swap (the generic fallback section)
};

const char* SectionStructureName(SectionStructure s);

// §4.7: one-sided for whole-structure access, two-sided for partial.
enum class CommMethod {
  kOneSided,
  kTwoSided,
};

// What the compiler's prefetch-insertion pass decided for this section.
enum class PrefetchKind {
  kNone,
  kSequential,    // next lines in address order
  kStrided,       // constant non-unit stride
  kIndirect,      // B[A[i]] — prefetch driven by a runahead index load
  kPointerChase,  // follow pointer values (MCF-style)
};

const char* PrefetchKindName(PrefetchKind k);

struct SectionConfig {
  std::string name = "section";
  SectionStructure structure = SectionStructure::kFullyAssociative;
  // Size of one cache line. Multiple data items per line are encouraged for
  // contiguous patterns (§4.2, Fig 9); 4096 for swap.
  uint32_t line_bytes = 4096;
  // Local memory dedicated to the section.
  uint64_t size_bytes = 0;
  // Associativity for kSetAssociative.
  uint32_t ways = 8;
  CommMethod comm = CommMethod::kOneSided;
  // Fraction of each line actually transferred under selective transmission
  // (two-sided partial-structure fetch, §4.5/§4.7). 1.0 = whole line.
  double transfer_fraction = 1.0;
  // Number of discontiguous fields gathered per line by the far-node CPU
  // when comm is two-sided.
  uint32_t gather_fields = 1;
  // Eviction hints enabled (compiler inserts flush+mark-evictable at the
  // last access, §4.5).
  bool eviction_hints = false;
  PrefetchKind prefetch = PrefetchKind::kNone;
  // How many lines ahead to prefetch (compiler: one network RTT of work).
  uint32_t prefetch_distance = 0;
  // Shared writable section for multi-threading (§4.6): forces full
  // associativity, disables eviction hints, uses dont-evict pinning.
  bool shared = false;
  // Degradation-ladder bounds (DESIGN.md "Failure model"): fault rounds per
  // transfer before escalating to the infallible verb, and failed async
  // writebacks held before a forced synchronous drain. Defaults match the
  // historical kMaxFaultRounds / kPendingWritebackLimit constants.
  int max_fault_rounds = 8;
  uint32_t pending_writeback_limit = 8;

  uint32_t num_lines() const {
    return line_bytes == 0 ? 0 : static_cast<uint32_t>(size_bytes / line_bytes);
  }

  std::string ToString() const;
};

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_SECTION_CONFIG_H_
