// Cache sections: the software-configurable local-DRAM cache (paper §4.2,
// §5.3). A Section tracks residency metadata and charges simulated time for
// lookups, misses, insertions, writebacks, and prefetches. The data plane
// (actual bytes) is write-through to the far arena and handled by the
// interpreter, so sections run timing-only transfers (null buffers).
//
// Three structures are provided, mirroring the paper: direct-mapped,
// K-way set-associative, and fully-associative (remote-address→slot map plus
// active/inactive approximate LRU). The transparent swap section lives in
// swap_section.h.

#ifndef MIRA_SRC_CACHE_SECTION_H_
#define MIRA_SRC_CACHE_SECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/lru.h"
#include "src/cache/section_config.h"
#include "src/net/transport.h"
#include "src/sim/clock.h"
#include "src/support/flat_map.h"
#include "src/support/stats.h"
#include "src/support/status.h"
#include "src/telemetry/telemetry.h"

namespace mira::cache {

// Per-section counters backing the paper's "cache performance overhead"
// metric (runtime time / remaining execution time, §4.1).
struct SectionStats {
  support::HitMissCounter lines;   // line-granular lookups
  uint64_t runtime_ns = 0;         // CPU spent inside the runtime (lookup, insert, evict)
  uint64_t stall_ns = 0;           // waiting for the network on the critical path
  uint64_t evictions = 0;
  uint64_t hint_evictions = 0;     // victims that were marked evictable
  uint64_t soft_evictions = 0;     // in-flight prefetched lines evicted unused
  uint64_t writebacks = 0;
  uint64_t prefetches_issued = 0;
  uint64_t prefetch_late_ns = 0;   // stall on lines whose prefetch hadn't landed
  uint64_t prefetched_hits = 0;    // prefetched lines hit before eviction ("useful")
  uint64_t prefetch_wasted = 0;    // prefetched lines evicted/released unused
  uint64_t bytes_fetched = 0;
  uint64_t bytes_written_back = 0;
  // ---- In-flight merging & coalescing (DESIGN.md §5.1) ----
  uint64_t inflight_joins = 0;     // demand misses absorbed by an in-flight fetch
  uint64_t inflight_join_ns = 0;   // residual latency those joins charged
  uint64_t coalesced_fetches = 0;  // gather verbs that merged >= 2 pending segments
  uint64_t coalesced_lines = 0;    // lines/pages carried by those gathers
  // ---- Failure-model counters (DESIGN.md "Failure model") ----
  uint64_t degraded_ns = 0;            // time spent waiting out far-node outages
  uint64_t prefetch_aborted = 0;       // prefetches dropped by faults (later demand-fetched)
  uint64_t writebacks_requeued = 0;    // async writebacks that failed and were queued
  uint64_t forced_sync_flushes = 0;    // queue saturations that forced a sync drain
  uint64_t reliable_escalations = 0;   // transfers pushed through the infallible path
  uint64_t node_failovers = 0;         // kNodeFailed verbs recovered via replica promotion

  uint64_t overhead_ns() const { return runtime_ns + stall_ns; }
  // 3PO-style prefetch accuracy: useful / issued-and-resolved. Aborted
  // prefetches count against accuracy too — they consumed an issue slot and
  // (on taint discards) wire bandwidth without producing a hit, and the
  // line pays a full demand fetch later anyway. Leaving them out of the
  // denominator inflated accuracy exactly when faults were suppressing
  // prefetch, which is when the issue throttle most needs the signal. 0
  // when no prefetched line has been used or discarded yet.
  double prefetch_accuracy() const {
    const uint64_t resolved = prefetched_hits + prefetch_wasted + prefetch_aborted;
    return resolved > 0 ? static_cast<double>(prefetched_hits) / static_cast<double>(resolved)
                        : 0.0;
  }
  void Reset() { *this = SectionStats{}; }
};

// Historical degradation-ladder defaults (shared by lookup sections and the
// swap section): fault rounds per transfer before escalating to the
// infallible verb, and failed writebacks held before a forced synchronous
// drain. Per-section values live in SectionConfig::{max_fault_rounds,
// pending_writeback_limit}; these constants pin the defaults.
inline constexpr int kMaxFaultRounds = 8;
inline constexpr size_t kPendingWritebackLimit = 8;

// Snapshots `stats` into the registry under `prefix` (e.g.
// "cache.section.hot"): hits/misses/miss_rate, runtime/stall ns, eviction
// and writeback counts, prefetch issue/useful/wasted/accuracy, and traffic.
void PublishSectionStats(telemetry::MetricsRegistry& registry, const std::string& prefix,
                         const SectionStats& stats);

// One resident (or in-flight) cache line.
struct LineMeta {
  static constexpr uint64_t kInvalidTag = UINT64_MAX;

  uint64_t tag = kInvalidTag;  // line id = remote_addr / line_bytes
  uint64_t ready_at_ns = 0;    // completion time of the fetch that loaded it
  uint64_t last_use = 0;       // logical use counter (set-assoc LRU)
  bool dirty = false;
  bool evictable = false;      // compiler eviction hint (§4.5)
  bool prefetched = false;     // loaded by a prefetch, not a demand miss

  bool valid() const { return tag != kInvalidTag; }
  void Invalidate() { *this = LineMeta{}; }
};

class Section {
 public:
  Section(SectionConfig config, net::Transport* net);
  virtual ~Section() = default;

  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;

  // One dereference of [raddr, raddr+len). `full_line_write` marks writes
  // the compiler proved cover whole lines (no fetch needed, §4.5
  // "read/write optimization").
  void Access(sim::SimClock& clk, uint64_t raddr, uint32_t len, bool write,
              bool full_line_write = false);

  // Compiler-promoted dereference (§4.4): proven resident with no possible
  // conflict, compiled to a native load. No lookup cost or LRU maintenance
  // is charged. The simulator still verifies residency on a free host-side
  // path — if the compiler mis-speculated (line in flight or absent), the
  // access degrades to a stall or a demand miss so timing never lies.
  void AccessPromoted(sim::SimClock& clk, uint64_t raddr, uint32_t len, bool write);

  // Batched access (§4.5 "data access batching"): all missing lines across
  // `accesses` are fetched with a single scatter-gather message — one RTT,
  // one per-message CPU cost — instead of one message per line.
  void AccessBatch(sim::SimClock& clk,
                   const std::vector<std::pair<uint64_t, uint32_t>>& accesses, bool write);

  // Asynchronous prefetch of the line(s) covering [raddr, raddr+len).
  void Prefetch(sim::SimClock& clk, uint64_t raddr, uint32_t len);

  // Eviction hint at last access: async-flush if dirty, mark evictable.
  void EvictHint(sim::SimClock& clk, uint64_t raddr, uint32_t len);

  // Pin / unpin (shared sections' dont-evict marks, §4.6).
  void Pin(uint64_t raddr, uint32_t len);
  void Unpin(uint64_t raddr, uint32_t len);

  // Flush all dirty lines (before offloading a function, §4.8). Blocking up
  // to the last writeback's completion.
  void FlushAll(sim::SimClock& clk);

  // End of the section's lifetime: writeback dirty lines (unless
  // `discard`, for read-only scopes) and drop all residency.
  void Release(sim::SimClock& clk, bool discard = false);

  const SectionConfig& config() const { return config_; }
  const SectionStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  uint32_t resident_lines() const { return resident_; }

  // Tracks hit/miss separately for accesses inside [lo, hi) — used by the
  // evaluation to report one object's miss rate within a shared cache.
  void SetProbeRange(uint64_t lo, uint64_t hi) {
    probe_lo_ = lo;
    probe_hi_ = hi;
  }
  const support::HitMissCounter& probe() const { return probe_; }

 protected:
  // Structure-specific behavior.
  virtual uint64_t LookupCostNs() const = 0;
  // Slot holding `line` or kNoSlot.
  virtual uint32_t FindSlot(uint64_t line) const = 0;
  // Slot to place `line` into, possibly evicting (bookkeeping updated by
  // caller). Must return a slot; aborts if all candidates are pinned.
  virtual uint32_t ChooseSlot(uint64_t line) = 0;
  // Structure bookkeeping on insert/touch/invalidate.
  virtual void OnInsert(uint32_t slot, uint64_t line) = 0;
  virtual void OnTouch(uint32_t slot) = 0;
  virtual void OnInvalidate(uint32_t slot, uint64_t line) = 0;
  // A line in `slot` was just marked evictable.
  virtual void OnEvictHint(uint32_t slot) {}

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  uint64_t LineOf(uint64_t raddr) const { return raddr / config_.line_bytes; }

  // FindSlot with a one-entry memo for the repeated-line pattern (several
  // field accesses landing on one line back to back). The memo is
  // self-validating — it is trusted only if the remembered slot still holds
  // the remembered line — so eviction/invalidation needs no hook: a stale
  // entry simply fails the check and falls through to the real lookup.
  // Simulated cost is unchanged (the caller still charges LookupCostNs());
  // only host-side work is saved.
  uint32_t LookupSlot(uint64_t line) const {
    if (line == memo_line_ && memo_slot_ != kNoSlot && slots_[memo_slot_].valid() &&
        slots_[memo_slot_].tag == line) {
      return memo_slot_;
    }
    const uint32_t slot = FindSlot(line);
    memo_line_ = line;
    memo_slot_ = slot;
    return slot;
  }
  void MemoizeSlot(uint64_t line, uint32_t slot) const {
    memo_line_ = line;
    memo_slot_ = slot;
  }

  // Handles one line's demand access.
  void AccessLine(sim::SimClock& clk, uint64_t line, bool write, bool full_line_write);

  // Evicts the line currently in `slot` (if valid): writeback if dirty.
  void EvictSlot(sim::SimClock& clk, uint32_t slot);

  // One fallible fetch of `line` (the transport retries per its policy).
  // Returns the completion timestamp, or the transport's failure.
  support::Result<uint64_t> TryFetchLine(sim::SimClock& clk, uint64_t line, bool demand);

  // Integrity check for a joined in-flight fetch (the adopted delivery is
  // in net_->last_delivery()). True = the join stands. False = the verdict
  // demanded a re-fetch: the shared entry is dropped so every waiter after
  // this one falls back to the real retry ladder, and the caller must
  // demand-fetch through FetchLineReliable (whose verify rounds close the
  // episode this check opened).
  bool JoinVerified(sim::SimClock& clk, uint64_t raddr, uint32_t len);

  // Prefetch bookkeeping. Prefetch() reserves + inserts a slot per missing
  // line up front (so a burst sees its own earlier lines as in flight),
  // then either finalizes the reservation once the fetch issued or rolls it
  // back on an abort.
  void PrefetchInserted(sim::SimClock& clk, uint64_t line, uint32_t slot, uint64_t ready_at_ns);
  void PrefetchAborted(sim::SimClock& clk, uint64_t line, uint32_t slot);

  // Demand-fetch degradation ladder: retry, wait out outage windows, verify
  // the delivery when integrity checking is attached (tainted or stale
  // deliveries re-fetch for bounded rounds), and after
  // config_.max_fault_rounds escalate to the infallible verb. Never fails.
  uint64_t FetchLineReliable(sim::SimClock& clk, uint64_t line);

  // Async writeback of the line at `raddr`; on fault the line is requeued
  // onto pending_writebacks_ and the queue drained synchronously once it
  // saturates (write-back throttled degraded mode).
  void WritebackLine(sim::SimClock& clk, uint64_t raddr);

  // Reliably pushes every queued writeback through (sync path + ladder).
  void DrainPendingWritebacks(sim::SimClock& clk);

  // Blocks until the far node is reachable again, charging the wait to
  // stall_ns and degraded_ns.
  void WaitOutOutage(sim::SimClock& clk);

  // Lazily-allocated trace lane for this section's events, so Perfetto
  // renders one labeled track per cache section ("section:<name>").
  uint32_t LaneTid();

  SectionConfig config_;
  net::Transport* net_;
  SectionStats stats_;
  // Soft pins: 1 while a prefetched line awaits its first use. Victim
  // selection avoids these unless nothing else is evictable.
  std::vector<uint8_t> soft_pins_;
  uint64_t probe_lo_ = 0;
  uint64_t probe_hi_ = 0;
  support::HitMissCounter probe_;
  std::vector<LineMeta> slots_;
  std::vector<uint16_t> pins_;
  uint64_t use_counter_ = 0;
  uint32_t resident_ = 0;
  uint64_t last_writeback_done_ns_ = 0;
  // Remote addresses of writebacks that failed and await a reliable drain.
  std::vector<uint64_t> pending_writebacks_;
  uint32_t lane_tid_ = 0;  // trace lane; 0 = not yet allocated (tids start at 1)

 private:
  // LookupSlot's one-entry memo (see above).
  mutable uint64_t memo_line_ = LineMeta::kInvalidTag;
  mutable uint32_t memo_slot_ = kNoSlot;
};

// slot = line % num_lines; no conflict for sequential/strided patterns.
class DirectMappedSection : public Section {
 public:
  DirectMappedSection(SectionConfig config, net::Transport* net);

 protected:
  uint64_t LookupCostNs() const override;
  uint32_t FindSlot(uint64_t line) const override;
  uint32_t ChooseSlot(uint64_t line) override;
  void OnInsert(uint32_t slot, uint64_t line) override {}
  void OnTouch(uint32_t slot) override {}
  void OnInvalidate(uint32_t slot, uint64_t line) override {}
};

// K ways per set, exact LRU within a set (K is small).
class SetAssociativeSection : public Section {
 public:
  SetAssociativeSection(SectionConfig config, net::Transport* net);

 protected:
  uint64_t LookupCostNs() const override;
  uint32_t FindSlot(uint64_t line) const override;
  uint32_t ChooseSlot(uint64_t line) override;
  void OnInsert(uint32_t slot, uint64_t line) override {}
  void OnTouch(uint32_t slot) override {}
  void OnInvalidate(uint32_t slot, uint64_t line) override {}

 private:
  uint32_t sets_;
};

// Hash map + free list + active/inactive approximate LRU (paper §5.3).
class FullyAssociativeSection : public Section {
 public:
  FullyAssociativeSection(SectionConfig config, net::Transport* net);

 protected:
  uint64_t LookupCostNs() const override;
  uint32_t FindSlot(uint64_t line) const override;
  uint32_t ChooseSlot(uint64_t line) override;
  void OnInsert(uint32_t slot, uint64_t line) override;
  void OnTouch(uint32_t slot) override;
  void OnInvalidate(uint32_t slot, uint64_t line) override;
  void OnEvictHint(uint32_t slot) override { evictable_queue_.push_back(slot); }

 private:
  support::FlatMap64 map_;  // line → slot
  std::vector<uint32_t> free_slots_;
  ActiveInactiveLru lru_;
  // Evictable-marked slots checked before LRU (paper §4.5: "when inserting
  // a new cache line, we check which existing lines are marked evictable and
  // evict those first").
  std::vector<uint32_t> evictable_queue_;
};

// Factory: builds the right structure for `config` (kSwap is rejected here;
// use SwapSection).
std::unique_ptr<Section> MakeSection(const SectionConfig& config, net::Transport* net);

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_SECTION_H_
