// AccessSite: a per-call-site placement memo (inline cache) for the
// compiled-access fast path. The bytecode engine owns one slot per lowered
// rmem load/store; the SectionManager fills it with the mapped range that
// served the last access from that site and validates it on the next one
// with a single generation compare + range check — no ordered-map lookup.
//
// A slot is only a cache: MapRange/UnmapRange bump the manager's generation
// counter, which invalidates every outstanding site at once, so a stale
// binding can never route an access to the wrong section. Unmapped (swap)
// addresses are never memoized — there is no bounding range to validate
// against.

#ifndef MIRA_SRC_CACHE_ACCESS_SITE_H_
#define MIRA_SRC_CACHE_ACCESS_SITE_H_

#include <cstdint>

namespace mira::cache {

class Section;

struct AccessSite {
  uint64_t base = 0;        // mapped range [base, base+size)
  uint64_t size = 0;
  Section* section = nullptr;
  uint16_t section_id = 0;
  // Generation of the owning SectionManager when bound. UINT32_MAX (the
  // default) never matches a live manager, so fresh slots always miss.
  uint32_t generation = UINT32_MAX;
};

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_ACCESS_SITE_H_
