// SectionManager: the registry of cache sections plus the remote-pointer
// encoding from paper §5.2.1 — section ID in the highest 16 bits, offset in
// the lower 48. Section ID 0 is reserved for pointers to *local* objects
// (their normal virtual addresses have zero high bits), letting one
// dereference path serve pointers that may target either local or remotable
// objects at run time.

#ifndef MIRA_SRC_CACHE_SECTION_MANAGER_H_
#define MIRA_SRC_CACHE_SECTION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/cache/access_site.h"
#include "src/cache/section.h"
#include "src/cache/swap_section.h"
#include "src/farmem/far_memory_node.h"

namespace mira::cache {

// Encoded far-memory pointer: 16-bit section id | 48-bit offset.
struct RemotePtr {
  static constexpr int kOffsetBits = 48;
  static constexpr uint64_t kOffsetMask = (1ULL << kOffsetBits) - 1;
  static constexpr uint16_t kLocalSection = 0;

  uint64_t bits = 0;

  static RemotePtr Encode(uint16_t section, uint64_t offset) {
    return RemotePtr{(static_cast<uint64_t>(section) << kOffsetBits) | (offset & kOffsetMask)};
  }
  // A pointer to a local object is its virtual address verbatim; the high
  // 16 bits of canonical user-space addresses are zero, so it decodes as
  // section 0.
  static RemotePtr Local(uint64_t vaddr) { return RemotePtr{vaddr & kOffsetMask}; }

  uint16_t section() const { return static_cast<uint16_t>(bits >> kOffsetBits); }
  uint64_t offset() const { return bits & kOffsetMask; }
  bool is_local() const { return section() == kLocalSection; }
};

// Where a remote address is cached. section_id 0 means the swap section.
struct Placement {
  uint16_t section_id = 0;
  Section* section = nullptr;  // null for swap
};

class SectionManager {
 public:
  // The swap section is mandatory: it serves all unmapped ranges (the
  // paper's initial configuration and the fallback for pre-compiled code).
  explicit SectionManager(std::unique_ptr<SwapSection> swap) : swap_(std::move(swap)) {}

  // Registers a section; returns its id (≥ 1).
  uint16_t AddSection(std::unique_ptr<Section> section);

  // Routes the remote range [addr, addr+size) to `section_id` (0 = swap).
  // Overrides any previous mapping of the exact same base address.
  void MapRange(farmem::RemoteAddr addr, uint64_t size, uint16_t section_id);
  void UnmapRange(farmem::RemoteAddr addr);

  // Which section services `addr`.
  Placement Resolve(farmem::RemoteAddr addr) const;

  // Memoizing variant: when `site` holds a binding from the current mapping
  // generation whose range covers `addr`, the placement is returned without
  // touching the range map; otherwise the ordered-map walk runs once and
  // (for mapped addresses) re-binds the site. Bit-identical to Resolve —
  // only the lookup cost differs. Inline fast path: `addr - base` wraps for
  // addr < base, so one unsigned compare covers both range ends.
  Placement Resolve(farmem::RemoteAddr addr, AccessSite* site) {
    if (site->generation == generation_ && addr - site->base < site->size) {
      return Placement{site->section_id, site->section};
    }
    return ResolveSlow(addr, site);
  }

  // Bumped by every MapRange/UnmapRange; AccessSite bindings from older
  // generations are invalid.
  uint32_t generation() const { return generation_; }

  Section* section(uint16_t id) {
    MIRA_CHECK(id >= 1 && id <= sections_.size());
    return sections_[id - 1].get();
  }
  size_t section_count() const { return sections_.size(); }
  SwapSection* swap() { return swap_.get(); }

  // Sum of configured local-memory use across sections + swap pool.
  uint64_t TotalLocalBytes() const;

  // Release every section and the swap pool (writebacks included).
  void ReleaseAll(sim::SimClock& clk);

 private:
  struct Range {
    uint64_t size;
    uint16_t section_id;
  };

  // Range-map walk + site re-bind for a memo miss.
  Placement ResolveSlow(farmem::RemoteAddr addr, AccessSite* site);

  std::unique_ptr<SwapSection> swap_;
  std::vector<std::unique_ptr<Section>> sections_;
  std::map<farmem::RemoteAddr, Range> ranges_;
  uint32_t generation_ = 0;
};

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_SECTION_MANAGER_H_
