#include "src/cache/lru.h"

namespace mira::cache {

ActiveInactiveLru::ActiveInactiveLru(uint32_t slots)
    : prev_(slots, kNil),
      next_(slots, kNil),
      list_of_(slots, ListId::kNone),
      referenced_(slots, 0) {}

void ActiveInactiveLru::PushTail(List& list, ListId id, uint32_t slot) {
  next_[slot] = kNil;
  prev_[slot] = list.tail;
  if (list.tail != kNil) {
    next_[list.tail] = slot;
  }
  list.tail = slot;
  if (list.head == kNil) {
    list.head = slot;
  }
  list_of_[slot] = id;
  (id == ListId::kActive ? active_size_ : inactive_size_)++;
}

uint32_t ActiveInactiveLru::ChooseVictim(const std::vector<uint16_t>& pin_counts,
                                         const std::vector<uint8_t>& soft_pins) {
  uint32_t soft_fallback = kNil;
  // Consecutive unproductive steps (rotations of pinned/soft entries): once
  // the whole inactive list has been rotated without finding a victim, pull
  // a candidate from the active tail instead — otherwise a handful of
  // in-flight prefetched lines would starve eviction forever.
  uint32_t unproductive = 0;
  // Bounded scan so a fully-referenced inactive list cannot loop forever.
  for (uint32_t scanned = 0; scanned < 2 * resident() + 2; ++scanned) {
    if (inactive_size_ == 0 || unproductive > inactive_size_) {
      if (active_size_ == 0) {
        break;
      }
      const uint32_t demote = active_.tail;
      Unlink(active_, demote);
      referenced_[demote] = 0;
      // Tail, not head: the demoted slot is the next candidate examined.
      PushTail(inactive_, ListId::kInactive, demote);
      unproductive = 0;
    }
    const uint32_t cand = inactive_.tail;
    if (referenced_[cand] != 0) {
      // Second-chance: promote and keep scanning.
      Unlink(inactive_, cand);
      referenced_[cand] = 0;
      PushHead(active_, ListId::kActive, cand);
      continue;
    }
    if (!pin_counts.empty() && pin_counts[cand] != 0) {
      // Hard-pinned (dont-evict): rotate to the inactive head and continue.
      Unlink(inactive_, cand);
      PushHead(inactive_, ListId::kInactive, cand);
      ++unproductive;
      continue;
    }
    if (!soft_pins.empty() && soft_pins[cand] != 0) {
      // In-flight prefetched line: avoid if anything else is available.
      if (soft_fallback == kNil) {
        soft_fallback = cand;
      }
      Unlink(inactive_, cand);
      PushHead(inactive_, ListId::kInactive, cand);
      ++unproductive;
      continue;
    }
    return cand;
  }
  return soft_fallback;
}

}  // namespace mira::cache
