// Prefetch policies for the transparent swap path.
//
// ReadaheadPrefetcher models FastSwap/Linux swap readahead: a window of
// consecutive pages that doubles on sequential fault streaks.
//
// LeapPrefetcher models Leap [Al Maruf & Chowdhury, ATC'20]: it finds the
// *majority* access-stride over a recent window of fault addresses
// (Boyer-Moore majority vote) and prefetches along that trend with an
// adaptive window. Leap captures a single global pattern well and fails on
// interleaved per-object patterns — exactly the contrast the Mira paper
// draws in its Fig 15 discussion.

#ifndef MIRA_SRC_CACHE_SWAP_PREFETCHER_H_
#define MIRA_SRC_CACHE_SWAP_PREFETCHER_H_

#include <cstdint>
#include <deque>
#include <vector>

namespace mira::cache {

class SwapPrefetcher {
 public:
  virtual ~SwapPrefetcher() = default;

  // Called on each demand fault; fills `out` with pages to prefetch.
  virtual void OnFault(uint64_t page, std::vector<uint64_t>* out) = 0;

  // Feedback: a previously prefetched page was used before eviction (true)
  // or evicted unused (false). Adaptive policies resize their window.
  virtual void Feedback(bool useful) {}
};

// No prefetching at all.
class NullPrefetcher : public SwapPrefetcher {
 public:
  void OnFault(uint64_t page, std::vector<uint64_t>* out) override {}
};

class ReadaheadPrefetcher : public SwapPrefetcher {
 public:
  explicit ReadaheadPrefetcher(uint32_t max_window = 8) : max_window_(max_window) {}

  void OnFault(uint64_t page, std::vector<uint64_t>* out) override;

 private:
  uint32_t max_window_;
  uint32_t window_ = 1;
  uint64_t last_page_ = UINT64_MAX;
};

class LeapPrefetcher : public SwapPrefetcher {
 public:
  // `history` is the size of the access-history window examined by the
  // majority vote; `max_window` bounds the prefetch window.
  explicit LeapPrefetcher(uint32_t history = 32, uint32_t max_window = 16)
      : history_(history), max_window_(max_window) {}

  void OnFault(uint64_t page, std::vector<uint64_t>* out) override;
  void Feedback(bool useful) override;

  // Exposed for tests: the current majority stride (0 = none found).
  int64_t MajorityStride() const;

 private:
  uint32_t history_;
  uint32_t max_window_;
  uint32_t window_ = 2;
  uint64_t last_page_ = UINT64_MAX;
  std::deque<int64_t> deltas_;
  // Adaptive feedback accounting.
  uint32_t useful_ = 0;
  uint32_t useless_ = 0;
};

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_SWAP_PREFETCHER_H_
