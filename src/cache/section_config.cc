#include "src/cache/section_config.h"

#include "src/support/str.h"

namespace mira::cache {

const char* SectionStructureName(SectionStructure s) {
  switch (s) {
    case SectionStructure::kDirectMapped:
      return "direct";
    case SectionStructure::kSetAssociative:
      return "set-assoc";
    case SectionStructure::kFullyAssociative:
      return "full-assoc";
    case SectionStructure::kSwap:
      return "swap";
  }
  return "?";
}

const char* PrefetchKindName(PrefetchKind k) {
  switch (k) {
    case PrefetchKind::kNone:
      return "none";
    case PrefetchKind::kSequential:
      return "sequential";
    case PrefetchKind::kStrided:
      return "strided";
    case PrefetchKind::kIndirect:
      return "indirect";
    case PrefetchKind::kPointerChase:
      return "pointer-chase";
  }
  return "?";
}

std::string SectionConfig::ToString() const {
  return support::StrFormat(
      "%s{%s, line=%s, size=%s, ways=%u, comm=%s, xfer=%.2f, evict_hints=%d, prefetch=%s/%u%s}",
      name.c_str(), SectionStructureName(structure), support::HumanBytes(line_bytes).c_str(),
      support::HumanBytes(size_bytes).c_str(), ways,
      comm == CommMethod::kOneSided ? "1-sided" : "2-sided", transfer_fraction,
      eviction_hints ? 1 : 0, PrefetchKindName(prefetch), prefetch_distance,
      shared ? ", shared" : "");
}

}  // namespace mira::cache
