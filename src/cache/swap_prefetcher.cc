#include "src/cache/swap_prefetcher.h"

#include <algorithm>

namespace mira::cache {

void ReadaheadPrefetcher::OnFault(uint64_t page, std::vector<uint64_t>* out) {
  if (last_page_ != UINT64_MAX && page == last_page_ + 1) {
    window_ = std::min(window_ * 2, max_window_);
  } else {
    window_ = 1;
  }
  last_page_ = page;
  for (uint32_t i = 1; i <= window_; ++i) {
    out->push_back(page + i);
  }
}

int64_t LeapPrefetcher::MajorityStride() const {
  // Boyer-Moore majority vote over the recorded deltas. Leap accepts a
  // candidate holding at least half the window (not a strict majority):
  // with an even-length history a perfectly regular stride interrupted by
  // every-other-access noise sits at exactly half, and demanding one more
  // vote silenced the prefetcher on exactly the streams it was built for.
  int64_t cand = 0;
  int count = 0;
  for (const int64_t d : deltas_) {
    if (count == 0) {
      cand = d;
      count = 1;
    } else if (d == cand) {
      ++count;
    } else {
      --count;
    }
  }
  if (count == 0 || cand == 0) {
    return 0;
  }
  const auto occur = std::count(deltas_.begin(), deltas_.end(), cand);
  return static_cast<size_t>(occur) * 2 >= deltas_.size() ? cand : 0;
}

void LeapPrefetcher::OnFault(uint64_t page, std::vector<uint64_t>* out) {
  if (last_page_ != UINT64_MAX) {
    deltas_.push_back(static_cast<int64_t>(page) - static_cast<int64_t>(last_page_));
    if (deltas_.size() > history_) {
      deltas_.pop_front();
    }
  }
  last_page_ = page;
  const int64_t stride = MajorityStride();
  if (stride == 0) {
    return;
  }
  for (uint32_t i = 1; i <= window_; ++i) {
    const int64_t target = static_cast<int64_t>(page) + stride * static_cast<int64_t>(i);
    if (target >= 0) {
      out->push_back(static_cast<uint64_t>(target));
    }
  }
}

void LeapPrefetcher::Feedback(bool useful) {
  if (useful) {
    if (++useful_ >= 4) {
      window_ = std::min(window_ * 2, max_window_);
      useful_ = 0;
    }
    useless_ = 0;
  } else {
    if (++useless_ >= 4) {
      window_ = std::max<uint32_t>(window_ / 2, 1);
      useless_ = 0;
    }
    useful_ = 0;
  }
}

}  // namespace mira::cache
