// The transparent swap cache (paper §5.3, "Swap-based cache section").
//
// Models a user-space swap system built on userfaultfd: 4 KB pages, a
// dynamic virtual→physical mapping, a kernel-fault cost per miss, global
// approximate LRU eviction (active/inactive lists), and a pluggable
// prefetcher. Once a page is mapped, accesses are native-speed — swap's
// advantage over lookup-based sections — but every miss moves a whole page
// (amplification, the paper's core complaint about swap systems).
//
// The same class serves as (a) Mira's generic swap section (the initial
// configuration and the fallback for analysis-hostile scopes), (b) the
// FastSwap baseline (ReadaheadPrefetcher), and (c) the Leap baseline
// (LeapPrefetcher plus a slower data-path factor).

#ifndef MIRA_SRC_CACHE_SWAP_SECTION_H_
#define MIRA_SRC_CACHE_SWAP_SECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/lru.h"
#include "src/cache/section.h"
#include "src/cache/swap_prefetcher.h"
#include "src/net/transport.h"
#include "src/sim/clock.h"
#include "src/sim/resource.h"
#include "src/support/flat_map.h"

namespace mira::cache {

class SwapSection {
 public:
  static constexpr uint32_t kPageShift = 12;
  static constexpr uint32_t kPageBytes = 1u << kPageShift;

  // `size_bytes` is the local page-pool size; `datapath_factor` scales the
  // kernel fault/eviction path (Leap > FastSwap, paper §6.1).
  // `max_fault_rounds` / `pending_writeback_limit` bound the degradation
  // ladder (defaults match the historical constants).
  SwapSection(uint64_t size_bytes, net::Transport* net,
              std::unique_ptr<SwapPrefetcher> prefetcher, double datapath_factor = 1.0,
              int max_fault_rounds = kMaxFaultRounds,
              size_t pending_writeback_limit = kPendingWritebackLimit);

  // One memory access of `len` bytes at remote address `raddr`.
  void Access(sim::SimClock& clk, uint64_t raddr, uint32_t len, bool write);

  // Writes back all dirty pages and drops residency.
  void Release(sim::SimClock& clk);

  // Serializes the kernel fault path across logical threads (the Linux swap
  // locking bottleneck the paper's Fig 24 discussion points at). Null by
  // default (single-threaded runs).
  void SetFaultLock(sim::SerialResource* lock) { fault_lock_ = lock; }

  const SectionStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  uint32_t resident_pages() const { return lru_.resident(); }
  uint64_t size_bytes() const { return static_cast<uint64_t>(num_pages_) * kPageBytes; }

 private:
  struct PageMeta {
    uint64_t page = UINT64_MAX;
    uint64_t ready_at_ns = 0;
    bool dirty = false;
    bool prefetched = false;
  };

  // Page-table lookup with a one-entry memo for the repeated-page pattern
  // (consecutive accesses inside one 4 KB page). Self-validating: the memo
  // is trusted only if the remembered frame still maps the page, so
  // eviction needs no invalidation hook. Returns UINT32_MAX when unmapped.
  uint32_t LookupFrame(uint64_t page) const {
    if (page == memo_page_ && memo_frame_ != UINT32_MAX &&
        frames_[memo_frame_].page == page) {
      return memo_frame_;
    }
    const uint32_t frame = table_.Find(page);
    memo_page_ = page;
    memo_frame_ = frame;
    return frame;
  }

  // Demand-faults `page` in; returns the chosen slot, or UINT32_MAX if no
  // frame could be freed. Joins an in-flight fetch of the page when one is
  // pending (residual latency only, no duplicate verb).
  uint32_t FaultIn(sim::SimClock& clk, uint64_t page);
  // Prefetches every candidate page not already mapped. Two or more missing
  // pages coalesce into a single scatter-gather verb; a single page keeps
  // the historical one-verb path.
  void PrefetchPages(sim::SimClock& clk, const std::vector<uint64_t>& candidates);
  // Unmaps a reserved prefetch frame whose fetch aborted (fault or taint).
  void PrefetchRollback(uint64_t page, uint32_t frame);
  // Integrity check for a joined in-flight fetch; mirrors
  // cache::Section::JoinVerified (false = entry dropped, run the ladder).
  bool JoinVerified(sim::SimClock& clk, uint64_t raddr);
  void EvictFrame(sim::SimClock& clk, uint32_t slot);

  // Failure-model ladder (mirrors cache::Section; DESIGN.md "Failure
  // model"): waits out outages, requeues faulted writebacks, and drains the
  // queue synchronously when it saturates or at release.
  void WaitOutOutage(sim::SimClock& clk);
  void WritebackPage(sim::SimClock& clk, uint64_t raddr);
  void DrainPendingWritebacks(sim::SimClock& clk);

  // Lazily-allocated trace lane ("section:swap"), mirroring Section::LaneTid.
  uint32_t LaneTid();

  net::Transport* net_;
  std::unique_ptr<SwapPrefetcher> prefetcher_;
  double datapath_factor_;
  // Datapath-scaled fault costs, precomputed once (the cost model and
  // factor are fixed for the section's lifetime; the fault path runs per
  // miss).
  uint64_t demand_fault_ns_ = 0;
  uint64_t minor_fault_ns_ = 0;
  uint64_t evict_ns_ = 0;
  uint64_t native_access_ns_ = 0;
  int max_fault_rounds_;
  size_t pending_writeback_limit_;
  uint32_t num_pages_;
  std::vector<PageMeta> frames_;
  std::vector<uint32_t> free_frames_;
  std::vector<uint16_t> no_pins_;  // swap never pins; shared empty pin table
  support::FlatMap64 table_;       // page → frame
  mutable uint64_t memo_page_ = UINT64_MAX;   // LookupFrame's one-entry memo
  mutable uint32_t memo_frame_ = UINT32_MAX;
  ActiveInactiveLru lru_;
  SectionStats stats_;
  uint64_t last_writeback_done_ns_ = 0;
  sim::SerialResource* fault_lock_ = nullptr;
  std::vector<uint64_t> pending_writebacks_;  // raddrs of faulted writebacks
  std::vector<uint64_t> prefetch_scratch_;    // per-fault candidate buffer, reused
  uint32_t lane_tid_ = 0;  // trace lane; 0 = not yet allocated (tids start at 1)
};

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_SWAP_SECTION_H_
