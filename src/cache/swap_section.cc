#include "src/cache/swap_section.h"

#include <algorithm>

#include "src/integrity/integrity.h"
#include "src/support/check.h"
#include "src/support/str.h"

namespace mira::cache {

uint32_t SwapSection::LaneTid() {
  if (lane_tid_ == 0) {
    lane_tid_ = sim::AllocateTid();
    telemetry::Trace().SetThreadName(lane_tid_, "section:swap");
  }
  return lane_tid_;
}

SwapSection::SwapSection(uint64_t size_bytes, net::Transport* net,
                         std::unique_ptr<SwapPrefetcher> prefetcher, double datapath_factor,
                         int max_fault_rounds, size_t pending_writeback_limit)
    : net_(net),
      prefetcher_(std::move(prefetcher)),
      datapath_factor_(datapath_factor),
      demand_fault_ns_(static_cast<uint64_t>(
          static_cast<double>(net->cost().page_fault_ns) * datapath_factor)),
      minor_fault_ns_(static_cast<uint64_t>(
          static_cast<double>(net->cost().page_fault_ns) * 0.25 * datapath_factor)),
      evict_ns_(static_cast<uint64_t>(
          static_cast<double>(net->cost().page_evict_ns) * datapath_factor)),
      native_access_ns_(net->cost().native_access_ns),
      max_fault_rounds_(max_fault_rounds),
      pending_writeback_limit_(pending_writeback_limit),
      num_pages_(static_cast<uint32_t>(std::max<uint64_t>(1, size_bytes / kPageBytes))),
      frames_(num_pages_),
      no_pins_(num_pages_, 0),
      lru_(num_pages_) {
  free_frames_.reserve(num_pages_);
  for (uint32_t f = num_pages_; f > 0; --f) {
    free_frames_.push_back(f - 1);
  }
  table_.Reserve(num_pages_);
  pending_writebacks_.reserve(pending_writeback_limit_);
}

void SwapSection::Access(sim::SimClock& clk, uint64_t raddr, uint32_t len, bool write) {
  const uint64_t first = raddr >> kPageShift;
  const uint64_t last = (raddr + (len > 0 ? len - 1 : 0)) >> kPageShift;
  for (uint64_t page = first; page <= last; ++page) {
    const uint32_t frame_hit = LookupFrame(page);
    if (frame_hit != UINT32_MAX) {
      PageMeta& m = frames_[frame_hit];
      if (m.ready_at_ns > clk.now_ns()) {
        // Minor fault on an in-flight (prefetched) page.
        const uint64_t minor = minor_fault_ns_;
        clk.Advance(minor);
        stats_.runtime_ns += minor;
        const uint64_t wait = m.ready_at_ns - clk.now_ns();
        if (m.ready_at_ns > clk.now_ns()) {
          stats_.stall_ns += wait;
          stats_.prefetch_late_ns += wait;
          clk.AdvanceTo(m.ready_at_ns);
          auto& prof = telemetry::Profiler();
          if (prof.enabled()) {
            prof.ChargeStall(clk, "prefetch_wait", "swap", wait);
          }
        }
      }
      if (m.prefetched) {
        ++stats_.prefetched_hits;
        m.prefetched = false;
        prefetcher_->Feedback(true);
      }
      stats_.lines.Hit();
      m.dirty = m.dirty || write;
      lru_.OnTouch(frame_hit);
    } else {
      stats_.lines.Miss();
      const uint32_t frame = FaultIn(clk, page);
      MIRA_CHECK(frame != UINT32_MAX);
      frames_[frame].dirty = write;
      // Prefetcher reacts to the demand fault. Reuse one scratch buffer
      // across faults — this path runs once per miss, and a fresh vector
      // here was a measurable share of miss-heavy workloads.
      std::vector<uint64_t>& candidates = prefetch_scratch_;
      candidates.clear();
      prefetcher_->OnFault(page, &candidates);
      PrefetchPages(clk, candidates);
    }
  }
  // Mapped pages are accessed at native speed.
  clk.Advance(native_access_ns_);
}

bool SwapSection::JoinVerified(sim::SimClock& clk, uint64_t raddr) {
  auto* integ = integrity::ActiveOrNull(net_->integrity());
  if (integ == nullptr) {
    return true;
  }
  const auto verdict =
      integ->VerifyFetch(clk, raddr, raddr, kPageBytes, net_->last_delivery());
  if (verdict == integrity::FetchVerdict::kClean ||
      verdict == integrity::FetchVerdict::kFatal) {
    return true;
  }
  if (verdict == integrity::FetchVerdict::kStale) {
    DrainPendingWritebacks(clk);
  }
  // Tainted shared fetch: drop the entry so every later waiter shares the
  // single demand ladder this caller now runs.
  net_->DropInflight(raddr, kPageBytes);
  return false;
}

uint32_t SwapSection::FaultIn(sim::SimClock& clk, uint64_t page) {
  uint32_t frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    frame = lru_.ChooseVictim(no_pins_);
    if (frame == ActiveInactiveLru::kNil) {
      return UINT32_MAX;
    }
    EvictFrame(clk, frame);
  }
  PageMeta& m = frames_[frame];
  m.page = page;
  m.dirty = false;
  m.prefetched = false;
  const uint64_t raddr = page << kPageShift;
  {
    // Kernel fault path + synchronous page fetch, serialized across
    // threads when a fault lock is configured.
    const uint64_t fault = demand_fault_ns_;
    if (fault_lock_ != nullptr) {
      const uint64_t done = fault_lock_->Acquire(clk.now_ns(), fault);
      stats_.runtime_ns += done - clk.now_ns();
      clk.AdvanceTo(done);
    } else {
      clk.Advance(fault);
      stats_.runtime_ns += fault;
    }
    const uint64_t t0 = clk.now_ns();
    // MSHR join: a fetch for this page may still be on the wire (e.g. its
    // frame was soft-evicted before the prefetched data landed). Ride it
    // for the residual latency instead of issuing a duplicate verb.
    if (const uint64_t pending = net_->TryJoinRead(clk, raddr, kPageBytes);
        pending != 0 && JoinVerified(clk, raddr)) {
      const uint64_t wait = pending > clk.now_ns() ? pending - clk.now_ns() : 0;
      ++stats_.inflight_joins;
      stats_.inflight_join_ns += wait;
      stats_.stall_ns += wait;
      if (wait > 0) {
        clk.AdvanceTo(pending);
      }
      auto& join_prof = telemetry::Profiler();
      if (join_prof.enabled()) {
        join_prof.ChargeStall(clk, "inflight_wait", "swap", wait);
      }
      m.ready_at_ns = clk.now_ns();
      auto& trace = telemetry::Trace();
      if (trace.enabled()) {
        trace.CompleteOn(LaneTid(), t0, clk.now_ns() - t0, "cache.swap.fault_join", "cache",
                         support::StrFormat("{\"page\":%llu}",
                                            static_cast<unsigned long long>(page)));
      }
      table_.Insert(page, frame);
      memo_page_ = page;
      memo_frame_ = frame;
      lru_.OnInsert(frame);
      return frame;
    }
    auto& prof = telemetry::Profiler();
    const bool profiled = prof.enabled();
    if (profiled) {
      prof.BeginStall(clk, "demand_fetch", "swap");
    }
    bool healing = false;
    const auto end_heal = [&] {
      if (healing) {
        prof.EndStall(clk);
        healing = false;
      }
    };
    // Demand-fetch ladder: retry, wait out outages, verify the delivered
    // page when integrity checking is attached, escalate to the infallible
    // verb after max_fault_rounds_ — a major fault cannot be dropped, the
    // faulting thread needs the page.
    auto* integ = integrity::ActiveOrNull(net_->integrity());
    int heal_rounds = 0;
    for (int round = 0;; ++round) {
      const support::Status s = net_->TryReadSync(clk, raddr, nullptr, kPageBytes);
      if (s.ok()) {
        if (integ == nullptr) {
          break;
        }
        const auto verdict =
            integ->VerifyFetch(clk, raddr, raddr, kPageBytes, net_->last_delivery());
        if (verdict == integrity::FetchVerdict::kClean ||
            verdict == integrity::FetchVerdict::kFatal) {
          break;
        }
        if (verdict == integrity::FetchVerdict::kStale) {
          DrainPendingWritebacks(clk);
        }
        if (heal_rounds + 1 >= integ->config().max_refetch_rounds) {
          end_heal();
          ++stats_.reliable_escalations;
          net_->ReadSync(clk, raddr, nullptr, kPageBytes);
          integ->MarkHealed(raddr, /*escalated=*/true);
          break;
        }
        ++heal_rounds;
        integ->CountRefetchRound();
        if (profiled && !healing) {
          prof.BeginStall(clk, "integrity_heal", "swap");
          healing = true;
        }
        continue;
      }
      if (s.code() == support::ErrorCode::kUnavailable) {
        WaitOutOutage(clk);
      } else if (s.code() == support::ErrorCode::kNodeFailed) {
        // Failover ladder: promote a surviving replica and re-issue; with
        // no survivor the page quarantines to kDataLoss via integrity.
        if (net_->RecoverNodeFailure(clk, raddr, kPageBytes).ok()) {
          ++stats_.node_failovers;
        } else if (integ != nullptr) {
          integ->QuarantineRange(raddr, kPageBytes);
        }
      }
      if (round + 1 >= max_fault_rounds_) {
        end_heal();
        ++stats_.reliable_escalations;
        net_->ReadSync(clk, raddr, nullptr, kPageBytes);
        if (integ != nullptr) {
          integ->MarkHealed(raddr, /*escalated=*/true);
        }
        break;
      }
    }
    end_heal();
    if (profiled) {
      prof.EndStall(clk);
    }
    m.ready_at_ns = clk.now_ns();
    stats_.stall_ns += clk.now_ns() - t0;
    auto& trace = telemetry::Trace();
    if (trace.enabled()) {
      trace.CompleteOn(LaneTid(), t0, clk.now_ns() - t0, "cache.swap.fault", "cache",
                       support::StrFormat("{\"page\":%llu}",
                                          static_cast<unsigned long long>(page)));
    }
  }
  stats_.bytes_fetched += kPageBytes;
  table_.Insert(page, frame);
  memo_page_ = page;
  memo_frame_ = frame;
  lru_.OnInsert(frame);
  return frame;
}

void SwapSection::PrefetchRollback(uint64_t page, uint32_t frame) {
  // Fault-dropped or tainted prefetch: hand the frame back unmapped; the
  // page downgrades to a demand fault at its first access (where any open
  // integrity episode heals, or at the final audit if never touched).
  ++stats_.prefetch_aborted;
  table_.Erase(page);
  lru_.Remove(frame);
  frames_[frame] = PageMeta{};
  free_frames_.push_back(frame);
}

void SwapSection::PrefetchPages(sim::SimClock& clk, const std::vector<uint64_t>& candidates) {
  // Phase 1: reserve + map a frame per missing page — victim choice,
  // eviction, and issue CPU are charged per page exactly as the serial path
  // always did — so later candidates in this burst see earlier ones as
  // resident.
  std::vector<std::pair<uint64_t, uint32_t>> pending;  // (page, frame)
  pending.reserve(candidates.size());
  for (const uint64_t page : candidates) {
    if (table_.Find(page) != support::FlatMap64::kNotFound) {
      continue;
    }
    uint32_t frame;
    if (!free_frames_.empty()) {
      frame = free_frames_.back();
      free_frames_.pop_back();
    } else {
      frame = lru_.ChooseVictim(no_pins_);
      if (frame == ActiveInactiveLru::kNil) {
        break;  // nothing evictable; drop the rest of the burst
      }
      EvictFrame(clk, frame);
      // A tiny pool can be forced to evict a page reserved earlier in this
      // very burst; its pending entry died with the frame.
      for (size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].second == frame) {
          pending.erase(pending.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
    }
    const uint64_t issue = net_->cost().prefetch_issue_ns;
    clk.Advance(issue);
    stats_.runtime_ns += issue;
    PageMeta& m = frames_[frame];
    m.page = page;
    m.dirty = false;
    m.prefetched = true;
    m.ready_at_ns = clk.now_ns();  // provisional; set when the fetch issues
    table_.Insert(page, frame);
    lru_.OnInsert(frame);
    pending.push_back({page, frame});
  }
  if (pending.empty()) {
    return;
  }
  auto* integ = integrity::ActiveOrNull(net_->integrity());
  // Phase 2, single page: the historical one-verb path, bit-identical.
  if (pending.size() == 1) {
    const auto [page, frame] = pending[0];
    const uint64_t raddr = page << kPageShift;
    const support::Result<uint64_t> r = net_->TryReadAsync(clk, raddr, nullptr, kPageBytes);
    if (!r.ok()) {
      PrefetchRollback(page, frame);
      return;
    }
    if (integ != nullptr) {
      const auto verdict =
          integ->VerifyFetch(clk, raddr, raddr, kPageBytes, net_->last_delivery());
      if (verdict == integrity::FetchVerdict::kRetry ||
          verdict == integrity::FetchVerdict::kStale) {
        net_->DropInflight(raddr, kPageBytes);
        PrefetchRollback(page, frame);
        return;
      }
    }
    frames_[frame].ready_at_ns = r.value();
    ++stats_.prefetches_issued;
    stats_.bytes_fetched += kPageBytes;
    return;
  }
  // Phase 2, coalesced: the whole readahead window rides ONE scatter-gather
  // verb — one per-message CPU charge, one doorbell — instead of a verb per
  // page.
  std::vector<net::Segment> segs;
  segs.reserve(pending.size());
  for (const auto& [page, frame] : pending) {
    segs.push_back(net::Segment{page << kPageShift, nullptr, kPageBytes});
  }
  std::vector<uint64_t> seg_done;
  const support::Result<uint64_t> r = net_->TryReadGatherAsync(clk, segs, &seg_done);
  if (!r.ok()) {
    // The whole message faulted out: every page aborts, as each would have
    // under per-page issue. First demand access re-faults.
    for (const auto& [page, frame] : pending) {
      PrefetchRollback(page, frame);
    }
    return;
  }
  ++stats_.coalesced_fetches;
  stats_.coalesced_lines += pending.size();
  // One message, one delivery: the first segment carries the wire taint;
  // every page still gets its own verdict so a discard stays page-granular.
  net::Delivery delivery = net_->last_delivery();
  for (size_t i = 0; i < pending.size(); ++i) {
    const auto [page, frame] = pending[i];
    if (integ != nullptr) {
      const uint64_t raddr = page << kPageShift;
      const auto verdict = integ->VerifyFetch(clk, raddr, raddr, kPageBytes, delivery);
      delivery = net::Delivery{};
      if (verdict == integrity::FetchVerdict::kRetry ||
          verdict == integrity::FetchVerdict::kStale) {
        net_->DropInflight(raddr, kPageBytes);
        PrefetchRollback(page, frame);
        continue;
      }
    }
    // Each page is ready when its own segment's bytes land, not when the
    // whole message does — coalescing must not delay the first page.
    frames_[frame].ready_at_ns = seg_done[i];
    ++stats_.prefetches_issued;
    stats_.bytes_fetched += kPageBytes;
  }
}

void SwapSection::EvictFrame(sim::SimClock& clk, uint32_t slot) {
  PageMeta& m = frames_[slot];
  MIRA_CHECK(m.page != UINT64_MAX);
  ++stats_.evictions;
  if (m.prefetched) {
    ++stats_.prefetch_wasted;
    prefetcher_->Feedback(false);  // prefetched but never used
  }
  const uint64_t evict = evict_ns_;
  clk.Advance(evict);
  stats_.runtime_ns += evict;
  if (m.dirty) {
    WritebackPage(clk, m.page << kPageShift);
  }
  table_.Erase(m.page);
  lru_.Remove(slot);
  m = PageMeta{};
}

void SwapSection::WaitOutOutage(sim::SimClock& clk) {
  const uint64_t until = net_->NextAvailableNs(clk.now_ns());
  if (until <= clk.now_ns()) {
    return;
  }
  const uint64_t t0 = clk.now_ns();
  const uint64_t span = until - t0;
  stats_.degraded_ns += span;
  stats_.stall_ns += span;
  net_->RecordOutageWait(span);
  clk.AdvanceTo(until);
  auto& prof = telemetry::Profiler();
  if (prof.enabled()) {
    prof.ChargeStall(clk, "outage_wait", "swap", span);
  }
  auto& trace = telemetry::Trace();
  if (trace.enabled()) {
    trace.CompleteOn(LaneTid(), t0, span, "cache.swap.degraded", "cache", "{}");
  }
}

void SwapSection::WritebackPage(sim::SimClock& clk, uint64_t raddr) {
  const support::Result<uint64_t> r = net_->TryWriteAsync(clk, raddr, nullptr, kPageBytes);
  if (r.ok()) {
    auto* integ = integrity::ActiveOrNull(net_->integrity());
    if (integ == nullptr ||
        integ->CommitWriteback(clk, raddr, kPageBytes, net_->last_delivery())) {
      last_writeback_done_ns_ = std::max(last_writeback_done_ns_, r.value());
      ++stats_.writebacks;
      stats_.bytes_written_back += kPageBytes;
      return;
    }
    // Frame rejected at the far node (wire corruption): requeue for the
    // reliable drain, which retransmits.
  }
  pending_writebacks_.push_back(raddr);
  ++stats_.writebacks_requeued;
  if (pending_writebacks_.size() >= pending_writeback_limit_) {
    ++stats_.forced_sync_flushes;
    DrainPendingWritebacks(clk);
  }
}

void SwapSection::DrainPendingWritebacks(sim::SimClock& clk) {
  if (pending_writebacks_.empty()) {
    return;
  }
  auto& prof = telemetry::Profiler();
  const bool profiled = prof.enabled();
  if (profiled) {
    prof.BeginStall(clk, "writeback_drain", "swap");
  }
  auto* integ = integrity::ActiveOrNull(net_->integrity());
  // See cache::Section::DrainPendingWritebacks: torn bursts apply only a
  // prefix at the far node; the receipt audit re-publishes the rest.
  const size_t tear_at =
      integ != nullptr ? net_->TearPoint(pending_writebacks_.size()) : pending_writebacks_.size();
  size_t applied = 0;
  std::vector<uint64_t> torn;
  while (!pending_writebacks_.empty()) {
    const uint64_t raddr = pending_writebacks_.back();
    const bool tear = applied >= tear_at;
    for (int round = 0;; ++round) {
      // Async drain (see cache::Section::DrainPendingWritebacks): the verb
      // completes on the link in the background; sync points still wait on
      // last_writeback_done_ns_.
      const support::Result<uint64_t> r =
          net_->TryWriteAsync(clk, raddr, nullptr, kPageBytes);
      if (r.ok()) {
        if (tear || integ == nullptr ||
            integ->CommitWriteback(clk, raddr, kPageBytes, net_->last_delivery())) {
          last_writeback_done_ns_ = std::max(last_writeback_done_ns_, r.value());
          break;
        }
      } else if (r.status().code() == support::ErrorCode::kUnavailable) {
        WaitOutOutage(clk);
      } else if (r.status().code() == support::ErrorCode::kNodeFailed) {
        if (net_->RecoverNodeFailure(clk, raddr, kPageBytes).ok()) {
          ++stats_.node_failovers;
        } else if (integ != nullptr) {
          integ->QuarantineRange(raddr, kPageBytes);
        }
      }
      if (round + 1 >= max_fault_rounds_) {
        ++stats_.reliable_escalations;
        last_writeback_done_ns_ = std::max(
            last_writeback_done_ns_,
            net_->WriteAsync(clk, raddr, nullptr, kPageBytes));
        if (!tear && integ != nullptr) {
          integ->ForceCommit(raddr, kPageBytes);
        }
        break;
      }
    }
    if (tear) {
      integ->RecordTorn(raddr, kPageBytes);
      torn.push_back(raddr);
    }
    ++applied;
    pending_writebacks_.pop_back();
    ++stats_.writebacks;
    stats_.bytes_written_back += kPageBytes;
  }
  for (const uint64_t raddr : torn) {
    net_->WriteSync(clk, raddr, nullptr, kPageBytes);
    ++stats_.writebacks;
    stats_.bytes_written_back += kPageBytes;
    integ->ForceCommit(raddr, kPageBytes);
  }
  if (profiled) {
    prof.EndStall(clk);
  }
}

void SwapSection::Release(sim::SimClock& clk) {
  for (uint32_t f = 0; f < frames_.size(); ++f) {
    PageMeta& m = frames_[f];
    if (m.page == UINT64_MAX) {
      continue;
    }
    if (m.prefetched) {
      ++stats_.prefetch_wasted;  // dropped at release without a use
    }
    if (m.dirty) {
      WritebackPage(clk, m.page << kPageShift);
    }
    table_.Erase(m.page);
    lru_.Remove(f);
    m = PageMeta{};
    free_frames_.push_back(f);
  }
  // Release must leave nothing queued.
  DrainPendingWritebacks(clk);
  if (last_writeback_done_ns_ > clk.now_ns()) {
    const uint64_t wait = last_writeback_done_ns_ - clk.now_ns();
    stats_.stall_ns += wait;
    clk.AdvanceTo(last_writeback_done_ns_);
    auto& prof = telemetry::Profiler();
    if (prof.enabled()) {
      prof.ChargeStall(clk, "writeback_flush", "swap", wait);
    }
  }
}

}  // namespace mira::cache
