// Linux-style approximate LRU over cache slots: an active and an inactive
// doubly-linked list plus per-slot reference bits (paper §5.3: "an
// approximation of LRU eviction using active and inactive lists").
//
// Lists are index-linked over flat arrays — no per-node allocation.

#ifndef MIRA_SRC_CACHE_LRU_H_
#define MIRA_SRC_CACHE_LRU_H_

#include <cstdint>
#include <vector>

#include "src/support/check.h"

namespace mira::cache {

class ActiveInactiveLru {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  explicit ActiveInactiveLru(uint32_t slots);

  // A new line was inserted into `slot` → head of the inactive list (second
  // touch promotes it; this is the Linux page-cache discipline). Inline
  // (with OnTouch/Remove): these run once per cache access / eviction.
  void OnInsert(uint32_t slot) {
    MIRA_CHECK(list_of_[slot] == ListId::kNone);
    referenced_[slot] = 0;
    PushHead(inactive_, ListId::kInactive, slot);
  }

  // `slot` was accessed: set its reference bit; inactive slots with the bit
  // already set are promoted to the active head.
  void OnTouch(uint32_t slot) {
    const ListId id = list_of_[slot];
    if (id == ListId::kNone) {
      return;
    }
    if (id == ListId::kInactive && referenced_[slot] != 0) {
      Unlink(inactive_, slot);
      referenced_[slot] = 0;
      PushHead(active_, ListId::kActive, slot);
      return;
    }
    referenced_[slot] = 1;
  }

  // Removes `slot` from whichever list holds it (explicit invalidation).
  void Remove(uint32_t slot) {
    const ListId id = list_of_[slot];
    if (id == ListId::kNone) {
      return;
    }
    Unlink(ListFor(id), slot);
    referenced_[slot] = 0;
  }

  // Picks a victim: the inactive tail, skipping (and promoting) referenced
  // slots; refills the inactive list from the active tail when it runs dry.
  // Slots with a nonzero hard pin count are never returned. Slots flagged
  // in `soft_pins` (in-flight prefetched lines awaiting first use) are
  // avoided while any alternative exists, but returned as a last resort.
  // Returns kNil only if every resident slot is hard-pinned.
  uint32_t ChooseVictim(const std::vector<uint16_t>& pin_counts,
                        const std::vector<uint8_t>& soft_pins = {});

  bool Contains(uint32_t slot) const { return list_of_[slot] != ListId::kNone; }
  uint32_t resident() const { return active_size_ + inactive_size_; }
  uint32_t active_size() const { return active_size_; }
  uint32_t inactive_size() const { return inactive_size_; }

 private:
  enum class ListId : uint8_t { kNone, kActive, kInactive };

  struct List {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  void PushHead(List& list, ListId id, uint32_t slot) {
    prev_[slot] = kNil;
    next_[slot] = list.head;
    if (list.head != kNil) {
      prev_[list.head] = slot;
    }
    list.head = slot;
    if (list.tail == kNil) {
      list.tail = slot;
    }
    list_of_[slot] = id;
    (id == ListId::kActive ? active_size_ : inactive_size_)++;
  }
  void PushTail(List& list, ListId id, uint32_t slot);
  void Unlink(List& list, uint32_t slot) {
    const uint32_t p = prev_[slot];
    const uint32_t n = next_[slot];
    if (p != kNil) {
      next_[p] = n;
    } else {
      list.head = n;
    }
    if (n != kNil) {
      prev_[n] = p;
    } else {
      list.tail = p;
    }
    (list_of_[slot] == ListId::kActive ? active_size_ : inactive_size_)--;
    list_of_[slot] = ListId::kNone;
    prev_[slot] = next_[slot] = kNil;
  }
  List& ListFor(ListId id) { return id == ListId::kActive ? active_ : inactive_; }

  std::vector<uint32_t> prev_;
  std::vector<uint32_t> next_;
  std::vector<ListId> list_of_;
  std::vector<uint8_t> referenced_;
  List active_;
  List inactive_;
  uint32_t active_size_ = 0;
  uint32_t inactive_size_ = 0;
};

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_LRU_H_
