// Linux-style approximate LRU over cache slots: an active and an inactive
// doubly-linked list plus per-slot reference bits (paper §5.3: "an
// approximation of LRU eviction using active and inactive lists").
//
// Lists are index-linked over flat arrays — no per-node allocation.

#ifndef MIRA_SRC_CACHE_LRU_H_
#define MIRA_SRC_CACHE_LRU_H_

#include <cstdint>
#include <vector>

#include "src/support/check.h"

namespace mira::cache {

class ActiveInactiveLru {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  explicit ActiveInactiveLru(uint32_t slots);

  // A new line was inserted into `slot` → head of the inactive list (second
  // touch promotes it; this is the Linux page-cache discipline).
  void OnInsert(uint32_t slot);

  // `slot` was accessed: set its reference bit; inactive slots with the bit
  // already set are promoted to the active head.
  void OnTouch(uint32_t slot);

  // Removes `slot` from whichever list holds it (explicit invalidation).
  void Remove(uint32_t slot);

  // Picks a victim: the inactive tail, skipping (and promoting) referenced
  // slots; refills the inactive list from the active tail when it runs dry.
  // Slots with a nonzero hard pin count are never returned. Slots flagged
  // in `soft_pins` (in-flight prefetched lines awaiting first use) are
  // avoided while any alternative exists, but returned as a last resort.
  // Returns kNil only if every resident slot is hard-pinned.
  uint32_t ChooseVictim(const std::vector<uint16_t>& pin_counts,
                        const std::vector<uint8_t>& soft_pins = {});

  bool Contains(uint32_t slot) const { return list_of_[slot] != ListId::kNone; }
  uint32_t resident() const { return active_size_ + inactive_size_; }
  uint32_t active_size() const { return active_size_; }
  uint32_t inactive_size() const { return inactive_size_; }

 private:
  enum class ListId : uint8_t { kNone, kActive, kInactive };

  struct List {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  void PushHead(List& list, ListId id, uint32_t slot);
  void PushTail(List& list, ListId id, uint32_t slot);
  void Unlink(List& list, uint32_t slot);
  List& ListFor(ListId id) { return id == ListId::kActive ? active_ : inactive_; }

  std::vector<uint32_t> prev_;
  std::vector<uint32_t> next_;
  std::vector<ListId> list_of_;
  std::vector<uint8_t> referenced_;
  List active_;
  List inactive_;
  uint32_t active_size_ = 0;
  uint32_t inactive_size_ = 0;
};

}  // namespace mira::cache

#endif  // MIRA_SRC_CACHE_LRU_H_
