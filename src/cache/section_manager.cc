#include "src/cache/section_manager.h"

namespace mira::cache {

uint16_t SectionManager::AddSection(std::unique_ptr<Section> section) {
  MIRA_CHECK_MSG(sections_.size() < 0xfffe, "too many sections");
  sections_.push_back(std::move(section));
  return static_cast<uint16_t>(sections_.size());
}

void SectionManager::MapRange(farmem::RemoteAddr addr, uint64_t size, uint16_t section_id) {
  MIRA_CHECK(section_id == 0 || section_id <= sections_.size());
  ranges_[addr] = Range{size, section_id};
  ++generation_;
}

void SectionManager::UnmapRange(farmem::RemoteAddr addr) {
  ranges_.erase(addr);
  ++generation_;
}

Placement SectionManager::Resolve(farmem::RemoteAddr addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it != ranges_.begin()) {
    --it;
    if (addr >= it->first && addr < it->first + it->second.size) {
      const uint16_t id = it->second.section_id;
      if (id == 0) {
        return Placement{0, nullptr};
      }
      return Placement{id, sections_[id - 1].get()};
    }
  }
  return Placement{0, nullptr};  // unmapped → swap
}

Placement SectionManager::ResolveSlow(farmem::RemoteAddr addr, AccessSite* site) {
  auto it = ranges_.upper_bound(addr);
  if (it != ranges_.begin()) {
    --it;
    if (addr >= it->first && addr < it->first + it->second.size) {
      const uint16_t id = it->second.section_id;
      site->base = it->first;
      site->size = it->second.size;
      site->section_id = id;
      site->section = id == 0 ? nullptr : sections_[id - 1].get();
      site->generation = generation_;
      return Placement{id, site->section};
    }
  }
  return Placement{0, nullptr};  // unmapped → swap (not memoized)
}

uint64_t SectionManager::TotalLocalBytes() const {
  uint64_t total = swap_ ? swap_->size_bytes() : 0;
  for (const auto& s : sections_) {
    total += s->config().size_bytes;
  }
  return total;
}

void SectionManager::ReleaseAll(sim::SimClock& clk) {
  for (auto& s : sections_) {
    s->Release(clk);
  }
  if (swap_) {
    swap_->Release(clk);
  }
}

}  // namespace mira::cache
