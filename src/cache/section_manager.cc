#include "src/cache/section_manager.h"

namespace mira::cache {

uint16_t SectionManager::AddSection(std::unique_ptr<Section> section) {
  MIRA_CHECK_MSG(sections_.size() < 0xfffe, "too many sections");
  sections_.push_back(std::move(section));
  return static_cast<uint16_t>(sections_.size());
}

void SectionManager::MapRange(farmem::RemoteAddr addr, uint64_t size, uint16_t section_id) {
  MIRA_CHECK(section_id == 0 || section_id <= sections_.size());
  ranges_[addr] = Range{size, section_id};
}

void SectionManager::UnmapRange(farmem::RemoteAddr addr) { ranges_.erase(addr); }

Placement SectionManager::Resolve(farmem::RemoteAddr addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it != ranges_.begin()) {
    --it;
    if (addr >= it->first && addr < it->first + it->second.size) {
      const uint16_t id = it->second.section_id;
      if (id == 0) {
        return Placement{0, nullptr};
      }
      return Placement{id, sections_[id - 1].get()};
    }
  }
  return Placement{0, nullptr};  // unmapped → swap
}

uint64_t SectionManager::TotalLocalBytes() const {
  uint64_t total = swap_ ? swap_->size_bytes() : 0;
  for (const auto& s : sections_) {
    total += s->config().size_bytes;
  }
  return total;
}

void SectionManager::ReleaseAll(sim::SimClock& clk) {
  for (auto& s : sections_) {
    s->Release(clk);
  }
  if (swap_) {
    swap_->Release(clk);
  }
}

}  // namespace mira::cache
