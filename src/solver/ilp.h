// A small exact integer-program solver for cache-section sizing (§4.3).
//
// Variables: one size choice per section, drawn from its sampled candidate
// sizes with profiled overhead costs. Objective: minimize total overhead.
// Constraints: for every lifetime phase, the sizes of sections live in that
// phase must fit in local memory.
//
// Solved with best-first branch & bound: the admissible lower bound of a
// partial assignment is its cost so far plus each unassigned section's
// cheapest candidate. Problem sizes here are tiny (≤ ~16 sections × ~8
// candidates), so the exact search is instant; the implementation still
// prunes properly so tests can stress it with larger random instances.

#ifndef MIRA_SRC_SOLVER_ILP_H_
#define MIRA_SRC_SOLVER_ILP_H_

#include <cstdint>
#include <vector>

namespace mira::solver {

// Candidate assignments for one section.
struct SectionChoices {
  std::vector<uint64_t> sizes;  // candidate sizes (bytes)
  std::vector<double> costs;    // profiled overhead at each size
};

// sum(size of sections in `members`) ≤ capacity.
struct CapacityConstraint {
  std::vector<int> members;
  uint64_t capacity = 0;
};

struct IlpSolution {
  bool feasible = false;
  std::vector<int> choice;  // index into each section's candidates
  double total_cost = 0.0;
  uint64_t nodes_explored = 0;
};

IlpSolution SolveSectionSizing(const std::vector<SectionChoices>& sections,
                               const std::vector<CapacityConstraint>& constraints);

}  // namespace mira::solver

#endif  // MIRA_SRC_SOLVER_ILP_H_
