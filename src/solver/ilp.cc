#include "src/solver/ilp.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/support/check.h"

namespace mira::solver {

namespace {

struct Node {
  std::vector<int> choice;  // assigned prefix
  double cost = 0.0;        // cost of the prefix
  double bound = 0.0;       // admissible lower bound on the total

  bool operator>(const Node& other) const { return bound > other.bound; }
};

}  // namespace

IlpSolution SolveSectionSizing(const std::vector<SectionChoices>& sections,
                               const std::vector<CapacityConstraint>& constraints) {
  IlpSolution solution;
  const size_t n = sections.size();
  if (n == 0) {
    solution.feasible = true;
    return solution;
  }
  for (const auto& s : sections) {
    MIRA_CHECK_MSG(!s.sizes.empty() && s.sizes.size() == s.costs.size(),
                   "section candidates malformed");
  }
  // Cheapest cost and smallest size per section (for bounds/feasibility).
  std::vector<double> min_cost(n);
  std::vector<uint64_t> min_size(n);
  for (size_t i = 0; i < n; ++i) {
    min_cost[i] = *std::min_element(sections[i].costs.begin(), sections[i].costs.end());
    min_size[i] = *std::min_element(sections[i].sizes.begin(), sections[i].sizes.end());
  }

  // A partial assignment is feasible-extensible if each constraint can
  // still be met by giving unassigned members their smallest sizes.
  auto feasible_prefix = [&](const std::vector<int>& choice) {
    for (const auto& c : constraints) {
      uint64_t used = 0;
      for (const int m : c.members) {
        MIRA_CHECK(m >= 0 && static_cast<size_t>(m) < n);
        if (static_cast<size_t>(m) < choice.size()) {
          used += sections[static_cast<size_t>(m)].sizes[static_cast<size_t>(
              choice[static_cast<size_t>(m)])];
        } else {
          used += min_size[static_cast<size_t>(m)];
        }
      }
      if (used > c.capacity) {
        return false;
      }
    }
    return true;
  };

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_choice;

  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> frontier;
  Node root;
  for (size_t i = 0; i < n; ++i) {
    root.bound += min_cost[i];
  }
  frontier.push(root);
  uint64_t explored = 0;

  while (!frontier.empty()) {
    Node node = frontier.top();
    frontier.pop();
    ++explored;
    if (node.bound >= best_cost) {
      break;  // best-first: nothing better remains
    }
    const size_t depth = node.choice.size();
    if (depth == n) {
      if (node.cost < best_cost) {
        best_cost = node.cost;
        best_choice = node.choice;
      }
      continue;
    }
    for (size_t k = 0; k < sections[depth].sizes.size(); ++k) {
      Node child = node;
      child.choice.push_back(static_cast<int>(k));
      child.cost += sections[depth].costs[k];
      if (!feasible_prefix(child.choice)) {
        continue;
      }
      child.bound = child.cost;
      for (size_t i = depth + 1; i < n; ++i) {
        child.bound += min_cost[i];
      }
      if (child.bound < best_cost) {
        frontier.push(std::move(child));
      }
    }
  }

  solution.nodes_explored = explored;
  if (!best_choice.empty() || (n == 0)) {
    solution.feasible = best_choice.size() == n;
    solution.choice = std::move(best_choice);
    solution.total_cost = best_cost;
  }
  return solution;
}

}  // namespace mira::solver
