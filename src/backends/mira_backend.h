// The Mira runtime backend: a SectionManager configured from a CachePlan
// (the output of the analysis/compilation pipeline), servicing compiled
// remote operations — promoted native loads, demand accesses, prefetches,
// eviction hints, batched fetches, lifetime releases, and offload RPCs.

#ifndef MIRA_SRC_BACKENDS_MIRA_BACKEND_H_
#define MIRA_SRC_BACKENDS_MIRA_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "src/backends/backend.h"
#include "src/cache/section_manager.h"
#include "src/farmem/local_allocator.h"
#include "src/runtime/plan.h"

namespace mira::backends {

class MiraBackend : public Backend {
 public:
  MiraBackend(farmem::FarMemoryNode* node, net::Transport* net, uint64_t local_bytes,
              runtime::CachePlan plan);

  std::string_view name() const override { return "mira"; }

  // remotable.alloc (§5.2.1): served by the range-buffering local allocator
  // — most allocations complete without a network round trip; refills go
  // to the far node's low-level allocator via RPC.
  support::Result<farmem::RemoteAddr> Alloc(sim::SimClock& clk, uint64_t bytes,
                                            std::string_view label,
                                            uint32_t elem_bytes) override;
  void Free(sim::SimClock& clk, farmem::RemoteAddr addr) override;

  void Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
            const AccessHints& hints) override;
  void Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
             const AccessHints& hints) override;
  // Site-aware fast path: validates the caller's placement memo against the
  // SectionManager generation instead of walking the range map per access.
  void Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
            const AccessHints& hints, cache::AccessSite* site) override;
  void Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
             const AccessHints& hints, cache::AccessSite* site) override;
  void LoadBatch(sim::SimClock& clk,
                 const std::vector<std::pair<farmem::RemoteAddr, uint32_t>>& accesses) override;

  void Prefetch(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) override;
  void EvictHint(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) override;
  void LifetimeEnd(sim::SimClock& clk, farmem::RemoteAddr addr) override;
  void Pin(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) override;
  void Unpin(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) override;

  bool SupportsOffload() const override { return true; }
  void OffloadCall(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                   uint64_t remote_service_ns) override;
  bool OffloadAdmission(sim::SimClock& clk) override;
  uint64_t DegradedNs() const override;

  void Drain(sim::SimClock& clk) override;

  // Per-section snapshots keyed "cache.section.<plan-name>.*" plus the swap
  // fallback under "cache.swap.*" and the prefetch-accuracy aggregates
  // ("cache.prefetch.useful" / "cache.prefetch.wasted") summed across all
  // sections — the signal 3PO-style prefetch tuning consumes.
  void PublishMetrics(telemetry::MetricsRegistry& registry) const override;

  const runtime::CachePlan& plan() const { return plan_; }
  cache::SectionManager& sections() { return *sections_; }
  // Stats of plan section `index` (0-based plan index).
  const cache::SectionStats& SectionStatsAt(uint32_t index);
  // The runtime section instantiated for plan index `index`.
  cache::Section* SectionAt(uint32_t index) {
    MIRA_CHECK(index < section_ids_.size());
    return sections_->section(section_ids_[index]);
  }
  const cache::SectionStats& swap_stats() const;

  // Encodes the RemotePtr the compiled code would hold for `addr` (§5.2.1):
  // section id + offset, or a section-0 "local" pointer for swap-managed /
  // local data.
  cache::RemotePtr EncodePtr(farmem::RemoteAddr addr) const;

 private:
  void AccessImpl(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len, bool write,
                  const AccessHints& hints, cache::AccessSite* site = nullptr);

  runtime::CachePlan plan_;
  farmem::LocalAllocator local_alloc_;
  std::unique_ptr<cache::SectionManager> sections_;
  // Plan section index → runtime section id.
  std::vector<uint16_t> section_ids_;
};

}  // namespace mira::backends

#endif  // MIRA_SRC_BACKENDS_MIRA_BACKEND_H_
