// AIFM baseline [Ruan et al., OSDI'20]: application-integrated far memory
// with a remoteable-pointer programming model, as characterized by the Mira
// paper's comparison:
//   - every dereference of a remoteable pointer pays a runtime cost (scope
//     registration, remote-bit check) that cannot be elided, because AIFM
//     has no program analysis;
//   - each remoteable pointer carries metadata (~16 B) that consumes local
//     memory usable for data — enough to make AIFM fail outright on MCF
//     below full memory (paper Fig 18);
//   - objects are fetched whole at the library-chosen chunk granularity,
//     with library-level sequential prefetching inside its array library;
//   - misses take a user-space (not kernel) path.

#ifndef MIRA_SRC_BACKENDS_AIFM_BACKEND_H_
#define MIRA_SRC_BACKENDS_AIFM_BACKEND_H_

#include <memory>
#include <unordered_map>

#include "src/backends/backend.h"
#include "src/cache/section.h"

namespace mira::backends {

class AifmBackend : public Backend {
 public:
  static constexpr uint32_t kChunkBytes = 4096;  // AIFM array-lib chunk

  AifmBackend(farmem::FarMemoryNode* node, net::Transport* net, uint64_t local_bytes)
      : Backend(node, net, local_bytes) {}

  std::string_view name() const override { return "aifm"; }

  // Tracks per-pointer metadata; fails with kOutOfMemory once metadata
  // leaves less than one chunk of usable local memory.
  support::Result<farmem::RemoteAddr> Alloc(sim::SimClock& clk, uint64_t bytes,
                                            std::string_view label,
                                            uint32_t elem_bytes) override;

  void Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
            const AccessHints& hints) override {
    AccessImpl(clk, addr, len, /*write=*/false);
  }
  void Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
             const AccessHints& hints) override {
    AccessImpl(clk, addr, len, /*write=*/true);
  }
  void Drain(sim::SimClock& clk) override;
  uint64_t DegradedNs() const override {
    return section_ != nullptr ? section_->stats().degraded_ns : 0;
  }

  void PublishMetrics(telemetry::MetricsRegistry& registry) const override {
    if (section_ != nullptr) {
      cache::PublishSectionStats(registry, "cache.section.aifm", section_->stats());
      registry.SetCounter("cache.prefetch.useful", section_->stats().prefetched_hits);
      registry.SetCounter("cache.prefetch.wasted", section_->stats().prefetch_wasted);
    }
    registry.SetCounter("aifm.metadata_bytes", metadata_bytes_);
    Backend::PublishMetrics(registry);
  }

  uint64_t metadata_bytes() const { return metadata_bytes_; }
  uint64_t usable_bytes() const {
    return metadata_bytes_ >= local_bytes_ ? 0 : local_bytes_ - metadata_bytes_;
  }
  bool failed() const { return failed_; }
  const cache::SectionStats* section_stats() const {
    return section_ ? &section_->stats() : nullptr;
  }

 private:
  void AccessImpl(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len, bool write);
  // (Re)builds the object cache sized to the metadata-reduced budget.
  void EnsureSection();

  std::unique_ptr<cache::Section> section_;
  uint64_t metadata_bytes_ = 0;
  bool failed_ = false;
  // Library-level stream prefetch state per object.
  struct StreamState {
    uint64_t last_line = UINT64_MAX;
    uint32_t streak = 0;
  };
  std::unordered_map<farmem::RemoteAddr, StreamState> streams_;
};

}  // namespace mira::backends

#endif  // MIRA_SRC_BACKENDS_AIFM_BACKEND_H_
