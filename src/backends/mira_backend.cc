#include "src/backends/mira_backend.h"

#include <algorithm>
#include <map>

namespace mira::backends {

MiraBackend::MiraBackend(farmem::FarMemoryNode* node, net::Transport* net,
                         uint64_t local_bytes, runtime::CachePlan plan)
    : Backend(node, net, local_bytes), plan_(std::move(plan)), local_alloc_(node, net) {
  // Carve sections out of local memory; whatever the plan reserves for the
  // generic swap section (at least one page) takes the rest.
  uint64_t swap_bytes = plan_.swap_bytes;
  if (swap_bytes == 0) {
    const uint64_t used = plan_.SectionBytesTotal();
    swap_bytes = local_bytes > used ? local_bytes - used : cache::SwapSection::kPageBytes;
  }
  auto swap = std::make_unique<cache::SwapSection>(
      swap_bytes, net, std::make_unique<cache::ReadaheadPrefetcher>());
  sections_ = std::make_unique<cache::SectionManager>(std::move(swap));
  for (const auto& config : plan_.sections) {
    section_ids_.push_back(sections_->AddSection(cache::MakeSection(config, net)));
  }
}

support::Result<farmem::RemoteAddr> MiraBackend::Alloc(sim::SimClock& clk, uint64_t bytes,
                                                       std::string_view label,
                                                       uint32_t elem_bytes) {
  // remotable.alloc: local allocator first; refills RPC to the far node.
  auto result = local_alloc_.Alloc(clk, bytes);
  if (!result.ok()) {
    return result;
  }
  ObjectInfo info;
  info.label = std::string(label);
  info.addr = result.value();
  info.bytes = bytes;
  info.elem_bytes = elem_bytes == 0 ? 64 : elem_bytes;
  objects_[result.value()] = std::move(info);
  const auto it = plan_.object_to_section.find(std::string(label));
  if (it != plan_.object_to_section.end()) {
    MIRA_CHECK(it->second < section_ids_.size());
    sections_->MapRange(result.value(), bytes, section_ids_[it->second]);
  }
  return result;
}

void MiraBackend::Free(sim::SimClock& clk, farmem::RemoteAddr addr) {
  const auto it = objects_.find(addr);
  if (it != objects_.end()) {
    sections_->UnmapRange(addr);
    local_alloc_.Free(addr, it->second.bytes);
    objects_.erase(it);
  }
}

void MiraBackend::AccessImpl(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                             bool write, const AccessHints& hints, cache::AccessSite* site) {
  const cache::Placement p =
      site != nullptr ? sections_->Resolve(addr, site) : sections_->Resolve(addr);
  if (p.section == nullptr) {
    sections_->swap()->Access(clk, addr, len, write);
    return;
  }
  if (hints.promoted) {
    p.section->AccessPromoted(clk, addr, len, write);
    return;
  }
  p.section->Access(clk, addr, len, write, hints.full_line_write && write);
}

void MiraBackend::Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                       const AccessHints& hints) {
  AccessImpl(clk, addr, len, /*write=*/false, hints);
}

void MiraBackend::Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                        const AccessHints& hints) {
  AccessImpl(clk, addr, len, /*write=*/true, hints);
}

void MiraBackend::Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                       const AccessHints& hints, cache::AccessSite* site) {
  AccessImpl(clk, addr, len, /*write=*/false, hints, site);
}

void MiraBackend::Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                        const AccessHints& hints, cache::AccessSite* site) {
  AccessImpl(clk, addr, len, /*write=*/true, hints, site);
}

void MiraBackend::LoadBatch(
    sim::SimClock& clk, const std::vector<std::pair<farmem::RemoteAddr, uint32_t>>& accesses) {
  // Group accesses by section; each section turns its group into a single
  // scatter-gather fetch. Swap-managed accesses degrade to individual.
  std::map<cache::Section*, std::vector<std::pair<uint64_t, uint32_t>>> groups;
  for (const auto& [addr, len] : accesses) {
    const cache::Placement p = sections_->Resolve(addr);
    if (p.section == nullptr) {
      sections_->swap()->Access(clk, addr, len, /*write=*/false);
    } else {
      groups[p.section].push_back({addr, len});
    }
  }
  for (auto& [section, group] : groups) {
    section->AccessBatch(clk, group, /*write=*/false);
  }
}

void MiraBackend::Prefetch(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {
  const cache::Placement p = sections_->Resolve(addr);
  if (p.section != nullptr) {
    p.section->Prefetch(clk, addr, len);
  }
}

void MiraBackend::EvictHint(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {
  const cache::Placement p = sections_->Resolve(addr);
  if (p.section != nullptr) {
    p.section->EvictHint(clk, addr, len);
  }
}

void MiraBackend::LifetimeEnd(sim::SimClock& clk, farmem::RemoteAddr addr) {
  const cache::Placement p = sections_->Resolve(addr);
  if (p.section == nullptr) {
    return;
  }
  bool discard = false;
  const ObjectInfo* obj = FindObject(addr);
  if (obj != nullptr) {
    const auto it = plan_.discard_on_release.find(obj->label);
    discard = it != plan_.discard_on_release.end() && it->second;
  }
  p.section->Release(clk, discard);
}

void MiraBackend::Pin(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {
  const cache::Placement p = sections_->Resolve(addr);
  if (p.section != nullptr) {
    p.section->Pin(addr, len);
  }
}

void MiraBackend::Unpin(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {
  const cache::Placement p = sections_->Resolve(addr);
  if (p.section != nullptr) {
    p.section->Unpin(addr, len);
  }
}

void MiraBackend::OffloadCall(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                              uint64_t remote_service_ns) {
  // Flush cached remotable state the offloaded function may read (§4.8;
  // the compiler narrows this to accessed sections — we flush all dirty
  // lines, which is what the paper's implementation does per function).
  for (size_t i = 0; i < section_ids_.size(); ++i) {
    sections_->section(section_ids_[i])->FlushAll(clk);
  }
  net_->Rpc(clk, req_bytes, resp_bytes, remote_service_ns);
}

bool MiraBackend::OffloadAdmission(sim::SimClock& clk) {
  // The request leg's fault/retry protocol runs here, before the callee is
  // executed remotely; OffloadCall's subsequent plain Rpc charges the
  // already-admitted round trip.
  return net_->AdmitRpc(clk).ok();
}

uint64_t MiraBackend::DegradedNs() const {
  auto* self = const_cast<MiraBackend*>(this);
  uint64_t total = self->sections_->swap()->stats().degraded_ns;
  for (const uint16_t id : section_ids_) {
    total += self->sections_->section(id)->stats().degraded_ns;
  }
  return total;
}

void MiraBackend::Drain(sim::SimClock& clk) {
  sections_->ReleaseAll(clk);
  Backend::Drain(clk);
}

void MiraBackend::PublishMetrics(telemetry::MetricsRegistry& registry) const {
  auto* self = const_cast<MiraBackend*>(this);
  uint64_t useful = 0;
  uint64_t wasted = 0;
  for (uint32_t i = 0; i < section_ids_.size(); ++i) {
    const cache::SectionStats& st = self->sections_->section(section_ids_[i])->stats();
    cache::PublishSectionStats(registry, "cache.section." + plan_.sections[i].name, st);
    useful += st.prefetched_hits;
    wasted += st.prefetch_wasted;
  }
  const cache::SectionStats& sw = self->sections_->swap()->stats();
  cache::PublishSectionStats(registry, "cache.swap", sw);
  useful += sw.prefetched_hits;
  wasted += sw.prefetch_wasted;
  registry.SetCounter("cache.prefetch.useful", useful);
  registry.SetCounter("cache.prefetch.wasted", wasted);
  Backend::PublishMetrics(registry);
}

const cache::SectionStats& MiraBackend::SectionStatsAt(uint32_t index) {
  MIRA_CHECK(index < section_ids_.size());
  return sections_->section(section_ids_[index])->stats();
}

const cache::SectionStats& MiraBackend::swap_stats() const {
  return const_cast<MiraBackend*>(this)->sections_->swap()->stats();
}

cache::RemotePtr MiraBackend::EncodePtr(farmem::RemoteAddr addr) const {
  const cache::Placement p = const_cast<MiraBackend*>(this)->sections_->Resolve(addr);
  if (p.section == nullptr) {
    return cache::RemotePtr::Local(addr);
  }
  return cache::RemotePtr::Encode(p.section_id, addr);
}

}  // namespace mira::backends
