#include "src/backends/aifm_backend.h"

#include <algorithm>

#include "src/support/str.h"

namespace mira::backends {

support::Result<farmem::RemoteAddr> AifmBackend::Alloc(sim::SimClock& clk, uint64_t bytes,
                                                       std::string_view label,
                                                       uint32_t elem_bytes) {
  auto result = Backend::Alloc(clk, bytes, label, elem_bytes);
  if (!result.ok()) {
    return result;
  }
  // One remoteable pointer per data item (paper §6.1: AIFM "requires a
  // significant amount of metadata for their remotable pointers, which
  // reduces the local memory space usable by actual data").
  const uint64_t elems = bytes / std::max<uint32_t>(1, elem_bytes);
  metadata_bytes_ += elems * cost().aifm_meta_bytes_per_ptr;
  if (usable_bytes() < kChunkBytes) {
    failed_ = true;
    return support::Status::OutOfMemory(support::StrFormat(
        "AIFM pointer metadata (%s) exceeds local memory (%s)",
        support::HumanBytes(metadata_bytes_).c_str(),
        support::HumanBytes(local_bytes_).c_str()));
  }
  section_.reset();  // budget changed; rebuild lazily
  return result;
}

void AifmBackend::EnsureSection() {
  if (section_ != nullptr) {
    return;
  }
  cache::SectionConfig config;
  config.name = "aifm-object-cache";
  config.structure = cache::SectionStructure::kFullyAssociative;
  config.line_bytes = kChunkBytes;
  config.size_bytes = std::max<uint64_t>(kChunkBytes, usable_bytes());
  section_ = cache::MakeSection(config, net_);
}

void AifmBackend::AccessImpl(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                             bool write) {
  MIRA_CHECK_MSG(!failed_, "AIFM backend already failed (metadata OOM)");
  EnsureSection();
  // Per-dereference runtime cost (dereference scope + remote-bit check).
  clk.Advance(cost().aifm_deref_ns);
  // Charge the user-space miss path on top of the fetch when missing.
  const uint64_t misses_before = section_->stats().lines.misses;
  section_->Access(clk, addr, len, write);
  if (section_->stats().lines.misses > misses_before) {
    clk.Advance(cost().aifm_miss_cpu_ns);
  }
  // Library-level sequential prefetch inside the object's chunked array.
  const ObjectInfo* obj = FindObject(addr);
  if (obj != nullptr) {
    StreamState& st = streams_[obj->addr];
    const uint64_t line = addr / kChunkBytes;
    if (st.last_line != UINT64_MAX && line == st.last_line + 1) {
      st.streak = std::min<uint32_t>(st.streak + 1, 8);
      const uint64_t obj_end = obj->addr + obj->bytes;
      const uint64_t pf_base = (line + 1) * kChunkBytes;
      const uint32_t pf_lines = st.streak;
      if (pf_base < obj_end) {
        const uint32_t span = static_cast<uint32_t>(
            std::min<uint64_t>(static_cast<uint64_t>(pf_lines) * kChunkBytes,
                               obj_end - pf_base));
        section_->Prefetch(clk, pf_base, span);
      }
    } else if (line != st.last_line) {
      st.streak = 0;
    }
    st.last_line = line;
  }
}

void AifmBackend::Drain(sim::SimClock& clk) {
  if (section_ != nullptr) {
    section_->Release(clk);
  }
  Backend::Drain(clk);
}

}  // namespace mira::backends
