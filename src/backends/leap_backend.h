// Leap baseline [Al Maruf & Chowdhury, ATC'20]: swap-based far memory with
// majority-trend prefetching. Uses the same page-swap data path as FastSwap
// but with Leap's prefetcher and a slower swap implementation (the Mira
// paper attributes Leap's deficit vs FastSwap to "FastSwap's more efficient
// data-path implementation in Linux").

#ifndef MIRA_SRC_BACKENDS_LEAP_BACKEND_H_
#define MIRA_SRC_BACKENDS_LEAP_BACKEND_H_

#include <memory>

#include "src/backends/backend.h"
#include "src/cache/swap_section.h"

namespace mira::backends {

class LeapBackend : public Backend {
 public:
  LeapBackend(farmem::FarMemoryNode* node, net::Transport* net, uint64_t local_bytes)
      : Backend(node, net, local_bytes),
        swap_(local_bytes, net, std::make_unique<cache::LeapPrefetcher>(),
              net->cost().leap_datapath_factor) {}

  std::string_view name() const override { return "leap"; }

  void Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
            const AccessHints& hints) override {
    swap_.Access(clk, addr, len, /*write=*/false);
  }
  void Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
             const AccessHints& hints) override {
    swap_.Access(clk, addr, len, /*write=*/true);
  }
  void Drain(sim::SimClock& clk) override {
    swap_.Release(clk);
    Backend::Drain(clk);
  }
  uint64_t DegradedNs() const override { return swap_.stats().degraded_ns; }

  void PublishMetrics(telemetry::MetricsRegistry& registry) const override {
    cache::PublishSectionStats(registry, "cache.swap", swap_.stats());
    registry.SetCounter("cache.prefetch.useful", swap_.stats().prefetched_hits);
    registry.SetCounter("cache.prefetch.wasted", swap_.stats().prefetch_wasted);
    Backend::PublishMetrics(registry);
  }

  const cache::SectionStats& swap_stats() const { return swap_.stats(); }

 private:
  cache::SwapSection swap_;
};

}  // namespace mira::backends

#endif  // MIRA_SRC_BACKENDS_LEAP_BACKEND_H_
