// The far-memory system interface the interpreter executes against.
//
// A Backend owns the timing model of one system (Mira, FastSwap, Leap,
// AIFM, or native local memory). The interpreter performs the data plane
// itself (write-through to the far arena) and calls the backend once per
// IR-level memory event for timing and bookkeeping. This separation
// guarantees all systems compute identical results and differ only in
// simulated time — which is also how we test them.

#ifndef MIRA_SRC_BACKENDS_BACKEND_H_
#define MIRA_SRC_BACKENDS_BACKEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/cache/access_site.h"
#include "src/farmem/far_memory_node.h"
#include "src/net/transport.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/support/status.h"
#include "src/telemetry/telemetry.h"

namespace mira::backends {

// Compiler-provided facts about one memory access (Mira only; other
// systems ignore them — they have no program knowledge).
struct AccessHints {
  // Native-load promotion applied (§4.4): proven resident, no conflicts.
  bool promoted = false;
  // A store proven to cover whole cache lines (§4.5): skip the fetch.
  bool full_line_write = false;
};

// One allocation site, as recorded by profiling (§4.1 collects "allocation
// sizes of all data objects").
struct ObjectInfo {
  std::string label;
  farmem::RemoteAddr addr = farmem::kNullRemoteAddr;
  uint64_t bytes = 0;
  uint32_t elem_bytes = 0;  // element granularity hint (64 if unknown)
};

class Backend {
 public:
  Backend(farmem::FarMemoryNode* node, net::Transport* net, uint64_t local_bytes)
      : node_(node), net_(net), local_bytes_(local_bytes) {}
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  virtual std::string_view name() const = 0;

  // Allocates a far object. The default implementation allocates from the
  // node and records the site; subclasses extend bookkeeping.
  virtual support::Result<farmem::RemoteAddr> Alloc(sim::SimClock& clk, uint64_t bytes,
                                                    std::string_view label,
                                                    uint32_t elem_bytes = 8);
  virtual void Free(sim::SimClock& clk, farmem::RemoteAddr addr);

  // Timing of one load/store of `len` bytes at `addr`.
  virtual void Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                    const AccessHints& hints) = 0;
  virtual void Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                     const AccessHints& hints) = 0;

  // Site-aware variants used by the bytecode engine: `site` is a per-call-
  // site placement memo owned by the caller. Backends that resolve accesses
  // through a SectionManager (Mira) use it to skip the range lookup; the
  // default ignores it, so timing is identical either way.
  virtual void Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                    const AccessHints& hints, cache::AccessSite* site) {
    Load(clk, addr, len, hints);
  }
  virtual void Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
                     const AccessHints& hints, cache::AccessSite* site) {
    Store(clk, addr, len, hints);
  }

  // Batched access: default decomposes into individual loads (only Mira
  // exploits batching).
  virtual void LoadBatch(sim::SimClock& clk,
                         const std::vector<std::pair<farmem::RemoteAddr, uint32_t>>& accesses);

  // Compiler-inserted hints; no-ops for systems without program knowledge.
  virtual void Prefetch(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {}
  virtual void EvictHint(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {}
  // End of an object's lifetime in its scope (§4.5/§6.2 "end a section as
  // soon as its lifetime ends").
  virtual void LifetimeEnd(sim::SimClock& clk, farmem::RemoteAddr addr) {}

  // Pin/unpin for shared-writable multithreading (§4.6).
  virtual void Pin(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {}
  virtual void Unpin(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len) {}

  // Whether this backend can execute offloaded functions (Mira only), and
  // the offload invocation itself: flush + RPC round trip carrying
  // `req_bytes`/`resp_bytes` with `remote_service_ns` of far-node work.
  virtual bool SupportsOffload() const { return false; }
  virtual void OffloadCall(sim::SimClock& clk, uint32_t req_bytes, uint32_t resp_bytes,
                           uint64_t remote_service_ns) {
    net_->Rpc(clk, req_bytes, resp_bytes, remote_service_ns);
  }

  // Pre-flight admission for an offloaded call (DESIGN.md "Failure model"):
  // runs the RPC request leg's fault/retry protocol *before* the callee
  // executes remotely. Returns false when the offload could not be
  // initiated — the interpreter then runs the callee locally, with zero
  // remote side effects ("offload faults strike at initiation").
  virtual bool OffloadAdmission(sim::SimClock& clk) { return true; }

  // Simulated time this backend's caches spent in fault-degraded mode
  // (waiting out far-node outages). Feeds the adaptive loop's
  // failure-degradation signal.
  virtual uint64_t DegradedNs() const { return 0; }

  // Finish outstanding work / write back dirty state (end of program). The
  // base implementation runs the integrity manager's end-of-run audit when
  // one is attached to the transport; overrides must chain to it after
  // releasing their caches.
  virtual void Drain(sim::SimClock& clk);

  // Snapshots this backend's cache state into the unified metrics registry
  // under "cache.*" (per-section entries plus prefetch-accuracy
  // aggregates). Transport verbs publish themselves continuously; this
  // covers the stats only the backend can name. The base implementation
  // publishes the "integrity.*" counters when an integrity manager is
  // attached; overrides must chain to it.
  virtual void PublishMetrics(telemetry::MetricsRegistry& registry) const;

  // Charge `ops` units of local compute.
  void Compute(sim::SimClock& clk, uint64_t ops) {
    clk.Advance(ops * net_->cost().compute_op_ns);
  }

  farmem::FarMemoryNode* node() { return node_; }
  net::Transport* net() { return net_; }
  const sim::CostModel& cost() const { return net_->cost(); }
  uint64_t local_bytes() const { return local_bytes_; }

  const std::map<farmem::RemoteAddr, ObjectInfo>& objects() const { return objects_; }
  // The object containing `addr`, or nullptr.
  const ObjectInfo* FindObject(farmem::RemoteAddr addr) const;

 protected:
  farmem::FarMemoryNode* node_;
  net::Transport* net_;
  uint64_t local_bytes_;
  std::map<farmem::RemoteAddr, ObjectInfo> objects_;
};

// Native execution with full local memory: the normalization baseline for
// every figure ("relative performance normalized over native execution").
class NativeBackend : public Backend {
 public:
  NativeBackend(farmem::FarMemoryNode* node, net::Transport* net)
      : Backend(node, net, 0) {}

  std::string_view name() const override { return "native"; }

  void Load(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
            const AccessHints& hints) override {
    clk.Advance(cost().native_access_ns);
  }
  void Store(sim::SimClock& clk, farmem::RemoteAddr addr, uint32_t len,
             const AccessHints& hints) override {
    clk.Advance(cost().native_access_ns);
  }
};

}  // namespace mira::backends

#endif  // MIRA_SRC_BACKENDS_BACKEND_H_
