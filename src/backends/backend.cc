#include "src/backends/backend.h"

#include "src/farmem/cluster.h"
#include "src/integrity/integrity.h"

namespace mira::backends {

void Backend::Drain(sim::SimClock& clk) {
  if (auto* integ = integrity::ActiveOrNull(net_->integrity()); integ != nullptr) {
    integ->FinalAudit(clk);
  }
}

void Backend::PublishMetrics(telemetry::MetricsRegistry& registry) const {
  if (auto* integ = integrity::ActiveOrNull(net_->integrity()); integ != nullptr) {
    integ->Publish(registry);
  }
}

support::Result<farmem::RemoteAddr> Backend::Alloc(sim::SimClock& clk, uint64_t bytes,
                                                   std::string_view label, uint32_t elem_bytes) {
  // Through the cluster when one is attached: allocation metadata lives
  // client-side (node 0's allocator), but the cluster also places the new
  // chunks on their replica set eagerly.
  auto addr = net_->cluster() != nullptr ? net_->cluster()->AllocRange(bytes)
                                         : node_->AllocRange(bytes);
  if (!addr.ok()) {
    return addr.status();
  }
  ObjectInfo info;
  info.label = std::string(label);
  info.addr = addr.value();
  info.bytes = bytes;
  info.elem_bytes = elem_bytes == 0 ? 64 : elem_bytes;
  objects_[addr.value()] = std::move(info);
  return addr.take();
}

void Backend::Free(sim::SimClock& clk, farmem::RemoteAddr addr) {
  auto it = objects_.find(addr);
  if (it != objects_.end()) {
    if (net_->cluster() != nullptr) {
      net_->cluster()->FreeRange(addr, it->second.bytes);
    } else {
      node_->FreeRange(addr, it->second.bytes);
    }
    objects_.erase(it);
  }
}

void Backend::LoadBatch(sim::SimClock& clk,
                        const std::vector<std::pair<farmem::RemoteAddr, uint32_t>>& accesses) {
  for (const auto& [addr, len] : accesses) {
    Load(clk, addr, len, AccessHints{});
  }
}

const ObjectInfo* Backend::FindObject(farmem::RemoteAddr addr) const {
  auto it = objects_.upper_bound(addr);
  if (it == objects_.begin()) {
    return nullptr;
  }
  --it;
  if (addr >= it->second.addr && addr < it->second.addr + it->second.bytes) {
    return &it->second;
  }
  return nullptr;
}

}  // namespace mira::backends
