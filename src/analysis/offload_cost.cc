#include "src/analysis/offload_cost.h"

#include <functional>

namespace mira::analysis {

namespace {

// Rough dynamic-cost weights: a loop multiplies its body by the constant
// trip count when known, else by a default.
constexpr uint64_t kDefaultTrip = 64;

struct StaticCounts {
  uint64_t ops = 0;
  uint64_t accesses = 0;
};

void CountRegion(const ir::Region& region, uint64_t mult, StaticCounts* out,
                 const std::map<uint32_t, int64_t>& consts) {
  for (const auto& instr : region.body) {
    if (ir::IsMemoryAccess(instr.kind)) {
      out->accesses += mult;
    } else {
      out->ops += mult;
    }
    if (instr.kind == ir::OpKind::kFor) {
      uint64_t trip = kDefaultTrip;
      const auto lo = consts.find(instr.operands[0]);
      const auto hi = consts.find(instr.operands[1]);
      if (lo != consts.end() && hi != consts.end() && hi->second > lo->second) {
        trip = static_cast<uint64_t>(hi->second - lo->second);
      }
      CountRegion(instr.regions[0], mult * trip, out, consts);
    } else {
      for (const auto& sub : instr.regions) {
        CountRegion(sub, mult, out, consts);
      }
    }
  }
}

void CollectConsts(const ir::Region& region, std::map<uint32_t, int64_t>* consts) {
  for (const auto& instr : region.body) {
    if (instr.kind == ir::OpKind::kConstI) {
      (*consts)[instr.result] = instr.i_attr;
    }
    for (const auto& sub : instr.regions) {
      CollectConsts(sub, consts);
    }
  }
}

bool HasCalls(const ir::Region& region) {
  bool found = false;
  ir::WalkInstrs(region, [&](const ir::Instr& i) {
    if (i.kind == ir::OpKind::kCall || i.kind == ir::OpKind::kOffloadCall ||
        i.kind == ir::OpKind::kAlloc) {
      found = true;
    }
  });
  return found;
}

}  // namespace

void OffloadCostAnalysis::Run(const std::map<std::string, uint64_t>& profiled_traffic) {
  for (const auto& f : module_->functions) {
    OffloadEstimate est;
    // Structural candidacy (§5.2.1): leaf functions that access remotable
    // objects / own locals only — no nested calls, no allocation.
    est.candidate = !f->body.body.empty() && !HasCalls(f->body);
    std::map<uint32_t, int64_t> consts;
    CollectConsts(f->body, &consts);
    StaticCounts counts;
    CountRegion(f->body, 1, &counts, consts);
    est.compute_ops = counts.ops;
    est.mem_accesses = counts.accesses;
    const auto it = profiled_traffic.find(f->name);
    est.local_traffic_bytes =
        it != profiled_traffic.end() ? it->second : counts.accesses * 64;
    // Local cost ≈ traffic transfer + per-line RTT amortization (already in
    // traffic via profiling); remote cost ≈ compute slowdown + RPC.
    const int64_t local_ns = static_cast<int64_t>(cost_.TransferNs(est.local_traffic_bytes)) +
                             static_cast<int64_t>(est.compute_ops * cost_.compute_op_ns);
    const int64_t remote_ns =
        static_cast<int64_t>(static_cast<double>(est.compute_ops * cost_.compute_op_ns) *
                             cost_.remote_compute_slowdown) +
        static_cast<int64_t>(cost_.rdma_rtt_ns + cost_.rpc_dispatch_ns) +
        static_cast<int64_t>(est.mem_accesses * cost_.native_access_ns);
    est.benefit_ns = local_ns - remote_ns;
    estimates_[f->name] = est;
  }
}

}  // namespace mira::analysis
