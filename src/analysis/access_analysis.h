// Static analysis of memory-access behavior (paper §4.2, §5.2.2).
//
// Combines:
//   - abstract pointer binding: a forward interprocedural dataflow that maps
//     every ptr-typed SSA value to the set of allocation-site labels it may
//     point to (the paper's SSA lattice analysis + type-based aliasing);
//   - scalar evolution on index expressions relative to the innermost
//     enclosing loop, yielding the classic patterns the compiler keys on:
//     SEQUENTIAL, STRIDED, INDIRECT (B[A[i]]), POINTER_CHASE (addresses
//     loaded from memory), UNKNOWN;
//   - per-access granularity: element size and field (offset,len) within
//     the element, which powers selective transmission (§4.5).

#ifndef MIRA_SRC_ANALYSIS_ACCESS_ANALYSIS_H_
#define MIRA_SRC_ANALYSIS_ACCESS_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace mira::analysis {

enum class AccessPattern {
  kSequential,    // unit-element stride in the innermost loop
  kStrided,       // constant non-unit stride
  kIndirect,      // index loaded from another object (B[A[i]])
  kPointerChase,  // address itself loaded from memory
  kUnknown,       // accumulator-driven or otherwise unanalyzable
};

const char* AccessPatternName(AccessPattern p);

struct MemAccessInfo {
  const ir::Instr* instr = nullptr;
  bool is_store = false;
  uint32_t bytes = 0;
  AccessPattern pattern = AccessPattern::kUnknown;
  // Byte distance between consecutive innermost-loop iterations (signed).
  int64_t stride_bytes = 0;
  // Possible target objects (allocation-site labels); empty if unknown.
  std::set<std::string> objects;
  // For kIndirect: the object the index was loaded from.
  std::set<std::string> index_source_objects;
  // Element layout, from the kIndex feeding the access.
  uint32_t elem_bytes = 0;    // |scale| of the index op (0 if no index op)
  int64_t field_offset = 0;   // byte offset within the element
  int loop_depth = 0;         // 0 = not in any loop
  // Estimated cost of one innermost-loop iteration in IR ops (for prefetch
  // distance: one network round trip of work ahead, §4.5).
  uint64_t loop_body_ops = 0;
  // Instruction count of the innermost loop's body region.
  const ir::Region* loop_body = nullptr;
};

struct FunctionAccessInfo {
  std::vector<MemAccessInfo> accesses;

  // Aggregate: all objects this function touches.
  std::set<std::string> touched_objects;
};

// Per-object aggregated behavior over a set of analyzed functions: the
// input to cache-section configuration (§4.2 "group similar patterns into
// one section").
struct ObjectBehavior {
  std::string label;
  AccessPattern pattern = AccessPattern::kUnknown;
  int64_t stride_bytes = 0;
  uint32_t elem_bytes = 8;
  bool has_reads = false;
  bool has_writes = false;
  // Distinct element fields touched: offset → max length.
  std::map<int64_t, uint32_t> fields;
  uint64_t loop_body_ops = 0;

  // Fraction of each element actually accessed (selective transmission).
  double AccessedFraction() const;
};

class AccessAnalysis {
 public:
  explicit AccessAnalysis(const ir::Module* module) : module_(module) {}

  // Runs the interprocedural pointer binding, then classifies every memory
  // access in every function.
  void Run();

  const FunctionAccessInfo& ForFunction(const std::string& name) const;

  // Aggregates behavior of `object` over the given functions (empty set =
  // all functions).
  ObjectBehavior Summarize(const std::string& object,
                           const std::set<std::string>& functions) const;

  // Pointer bindings of function `name`: value id → labels.
  const std::map<uint32_t, std::set<std::string>>& Bindings(const std::string& name) const;

 private:
  void BindPointers();
  void ClassifyFunction(const ir::Function& func);

  const ir::Module* module_;
  std::map<std::string, std::map<uint32_t, std::set<std::string>>> bindings_;
  std::map<std::string, FunctionAccessInfo> infos_;
  std::map<std::string, FunctionAccessInfo> empty_;
};

}  // namespace mira::analysis

#endif  // MIRA_SRC_ANALYSIS_ACCESS_ANALYSIS_H_
