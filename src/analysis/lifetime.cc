#include "src/analysis/lifetime.h"

namespace mira::analysis {

void LifetimeAnalysis::CollectTouchedRegion(const ir::Function& func, const ir::Region& region,
                                            std::set<std::string>* out, int depth) const {
  for (const auto& instr : region.body) {
    CollectTouched(func, instr, out, depth);
  }
}

void LifetimeAnalysis::CollectTouched(const ir::Function& func, const ir::Instr& instr,
                                      std::set<std::string>* out, int depth) const {
  if (depth > 16) {
    return;
  }
  if (instr.kind == ir::OpKind::kAlloc) {
    out->insert(instr.s_attr);
  }
  if (ir::IsMemoryAccess(instr.kind)) {
    const auto& binds = access_->Bindings(func.name);
    const auto it = binds.find(instr.operands[0]);
    if (it != binds.end()) {
      out->insert(it->second.begin(), it->second.end());
    }
    // Also resolve through the defining kIndex (binding may be on the base).
  }
  if (instr.kind == ir::OpKind::kCall || instr.kind == ir::OpKind::kOffloadCall) {
    // Argument-aware: the callee can only touch what its pointer arguments
    // reach at THIS call site, plus objects it allocates itself (directly
    // or via nested calls). Using the callee's context-insensitive touched
    // set would merge lifetimes of every object ever passed to it.
    const ir::Function& callee = *module_->functions[instr.callee];
    const auto& caller_binds = access_->Bindings(func.name);
    for (const uint32_t arg : instr.operands) {
      const auto it = caller_binds.find(arg);
      if (it != caller_binds.end()) {
        out->insert(it->second.begin(), it->second.end());
      }
    }
    CollectCalleeAllocs(callee, out, depth + 1);
  }
  for (const auto& sub : instr.regions) {
    CollectTouchedRegion(func, sub, out, depth);
  }
}

void LifetimeAnalysis::CollectCalleeAllocs(const ir::Function& callee,
                                           std::set<std::string>* out, int depth) const {
  if (depth > 16) {
    return;
  }
  ir::WalkInstrs(callee.body, [&](const ir::Instr& instr) {
    if (instr.kind == ir::OpKind::kAlloc) {
      out->insert(instr.s_attr);
    }
    if (instr.kind == ir::OpKind::kCall || instr.kind == ir::OpKind::kOffloadCall) {
      CollectCalleeAllocs(*module_->functions[instr.callee], out, depth + 1);
    }
  });
}

void LifetimeAnalysis::Run(const std::string& root) {
  lifetimes_.clear();
  const ir::Function* func = module_->FindFunction(root);
  MIRA_CHECK_MSG(func != nullptr, "lifetime root function not found");
  statement_count_ = static_cast<int>(func->body.body.size());
  for (int stmt = 0; stmt < statement_count_; ++stmt) {
    std::set<std::string> touched;
    CollectTouched(*func, func->body.body[static_cast<size_t>(stmt)], &touched, 0);
    for (const auto& obj : touched) {
      auto& lt = lifetimes_[obj];
      if (lt.first_stmt < 0) {
        lt.first_stmt = stmt;
      }
      lt.last_stmt = stmt;
    }
  }
  for (auto& [obj, lt] : lifetimes_) {
    lt.read_only = !access_->Summarize(obj, {}).has_writes;
  }
}

std::set<std::string> LifetimeAnalysis::LiveAt(int stmt) const {
  std::set<std::string> live;
  for (const auto& [obj, lt] : lifetimes_) {
    if (lt.first_stmt <= stmt && stmt <= lt.last_stmt) {
      live.insert(obj);
    }
  }
  return live;
}

bool LifetimeAnalysis::StmtWrites(const ir::Function& func, const ir::Instr& instr,
                                  const std::string& obj, int depth) const {
  return false;  // reserved for finer-grained writeback elision
}

}  // namespace mira::analysis
