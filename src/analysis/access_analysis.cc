#include "src/analysis/access_analysis.h"

#include <algorithm>
#include <functional>

namespace mira::analysis {

const char* AccessPatternName(AccessPattern p) {
  switch (p) {
    case AccessPattern::kSequential:
      return "sequential";
    case AccessPattern::kStrided:
      return "strided";
    case AccessPattern::kIndirect:
      return "indirect";
    case AccessPattern::kPointerChase:
      return "pointer-chase";
    case AccessPattern::kUnknown:
      return "unknown";
  }
  return "?";
}

double ObjectBehavior::AccessedFraction() const {
  if (elem_bytes == 0 || fields.empty()) {
    return 1.0;
  }
  uint64_t covered = 0;
  for (const auto& [off, len] : fields) {
    covered += len;
  }
  if (covered >= elem_bytes) {
    return 1.0;
  }
  return static_cast<double>(covered) / static_cast<double>(elem_bytes);
}

namespace {

// Where a value comes from, relative to the innermost loop of its use.
struct Scev {
  enum class Kind {
    kConst,      // loop-invariant w.r.t. the innermost loop
    kAffine,     // coeff * iv + inv
    kFromLoad,   // produced (directly or affinely) by a memory load
    kFromLocal,  // produced via a mutable local slot
    kOther,
  };
  Kind kind = Kind::kOther;
  int64_t coeff = 0;                  // iv coefficient (kAffine)
  const ir::Instr* src_load = nullptr;  // defining load (kFromLoad)
};

struct LoopCtx {
  const ir::Instr* loop = nullptr;   // the kFor
  uint32_t iv = UINT32_MAX;
  int64_t step = 1;                  // constant step if known, else 1
  const ir::Region* body = nullptr;
};

uint64_t CountOps(const ir::Region& r) {
  uint64_t n = 0;
  for (const auto& i : r.body) {
    ++n;
    for (const auto& sub : i.regions) {
      n += CountOps(sub);
    }
  }
  return n;
}

class FunctionClassifier {
 public:
  FunctionClassifier(const ir::Function& func,
                     const std::map<uint32_t, std::set<std::string>>& bindings,
                     FunctionAccessInfo* out)
      : func_(func), bindings_(bindings), out_(out) {}

  void Run() {
    BuildDefMap(func_.body);
    Walk(func_.body);
  }

 private:
  void BuildDefMap(const ir::Region& region) {
    for (const auto& instr : region.body) {
      if (instr.has_result()) {
        defs_[instr.result] = &instr;
      }
      for (const auto& sub : instr.regions) {
        BuildDefMap(sub);
      }
    }
  }

  // Constant value of `id` if statically known.
  bool ConstOf(uint32_t id, int64_t* out) const {
    const auto it = defs_.find(id);
    if (it == defs_.end() || it->second->kind != ir::OpKind::kConstI) {
      return false;
    }
    *out = it->second->i_attr;
    return true;
  }

  Scev Analyze(uint32_t id, int depth) const {
    if (depth > 16) {
      return Scev{};
    }
    // Induction variable of the innermost loop?
    if (!loops_.empty() && id == loops_.back().iv) {
      return Scev{Scev::Kind::kAffine, 1, nullptr};
    }
    // IV of an outer loop is invariant within the innermost one.
    for (const auto& l : loops_) {
      if (id == l.iv) {
        return Scev{Scev::Kind::kConst, 0, nullptr};
      }
    }
    const auto it = defs_.find(id);
    if (it == defs_.end()) {
      // Parameter: loop-invariant.
      return Scev{Scev::Kind::kConst, 0, nullptr};
    }
    const ir::Instr& d = *it->second;
    switch (d.kind) {
      case ir::OpKind::kConstI:
      case ir::OpKind::kConstF:
        return Scev{Scev::Kind::kConst, 0, nullptr};
      case ir::OpKind::kAdd:
      case ir::OpKind::kSub: {
        const Scev a = Analyze(d.operands[0], depth + 1);
        const Scev b = Analyze(d.operands[1], depth + 1);
        const int64_t sign = d.kind == ir::OpKind::kSub ? -1 : 1;
        if (a.kind == Scev::Kind::kAffine || b.kind == Scev::Kind::kAffine) {
          if ((a.kind == Scev::Kind::kAffine || a.kind == Scev::Kind::kConst) &&
              (b.kind == Scev::Kind::kAffine || b.kind == Scev::Kind::kConst)) {
            return Scev{Scev::Kind::kAffine, a.coeff + sign * b.coeff, nullptr};
          }
        }
        if (a.kind == Scev::Kind::kConst && b.kind == Scev::Kind::kConst) {
          return Scev{Scev::Kind::kConst, 0, nullptr};
        }
        if (a.kind == Scev::Kind::kFromLoad || b.kind == Scev::Kind::kFromLoad) {
          const Scev& l = a.kind == Scev::Kind::kFromLoad ? a : b;
          return Scev{Scev::Kind::kFromLoad, 0, l.src_load};
        }
        if (a.kind == Scev::Kind::kFromLocal || b.kind == Scev::Kind::kFromLocal) {
          return Scev{Scev::Kind::kFromLocal, 0, nullptr};
        }
        return Scev{};
      }
      case ir::OpKind::kMul: {
        const Scev a = Analyze(d.operands[0], depth + 1);
        const Scev b = Analyze(d.operands[1], depth + 1);
        int64_t c = 0;
        if (a.kind == Scev::Kind::kAffine && ConstOf(d.operands[1], &c)) {
          return Scev{Scev::Kind::kAffine, a.coeff * c, nullptr};
        }
        if (b.kind == Scev::Kind::kAffine && ConstOf(d.operands[0], &c)) {
          return Scev{Scev::Kind::kAffine, b.coeff * c, nullptr};
        }
        if (a.kind == Scev::Kind::kConst && b.kind == Scev::Kind::kConst) {
          return Scev{Scev::Kind::kConst, 0, nullptr};
        }
        if (a.kind == Scev::Kind::kFromLoad || b.kind == Scev::Kind::kFromLoad) {
          const Scev& l = a.kind == Scev::Kind::kFromLoad ? a : b;
          return Scev{Scev::Kind::kFromLoad, 0, l.src_load};
        }
        return Scev{};
      }
      case ir::OpKind::kRem:
      case ir::OpKind::kDiv:
      case ir::OpKind::kMin:
      case ir::OpKind::kMax:
      case ir::OpKind::kAnd:
      case ir::OpKind::kShr:
      case ir::OpKind::kShl: {
        // Conservative: propagate load provenance, else unknown unless both
        // invariant.
        const Scev a = Analyze(d.operands[0], depth + 1);
        const Scev b = Analyze(d.operands[1], depth + 1);
        if (a.kind == Scev::Kind::kConst && b.kind == Scev::Kind::kConst) {
          return Scev{Scev::Kind::kConst, 0, nullptr};
        }
        if (a.kind == Scev::Kind::kFromLoad) {
          return Scev{Scev::Kind::kFromLoad, 0, a.src_load};
        }
        if (b.kind == Scev::Kind::kFromLoad) {
          return Scev{Scev::Kind::kFromLoad, 0, b.src_load};
        }
        return Scev{};
      }
      case ir::OpKind::kLoad:
      case ir::OpKind::kRmemLoad:
        return Scev{Scev::Kind::kFromLoad, 0, &d};
      case ir::OpKind::kLocalLoad:
        return Scev{Scev::Kind::kFromLocal, 0, nullptr};
      case ir::OpKind::kF2I:
      case ir::OpKind::kI2F:
      case ir::OpKind::kSelect: {
        const Scev a = Analyze(d.operands[d.kind == ir::OpKind::kSelect ? 1 : 0], depth + 1);
        return a;
      }
      default:
        return Scev{};
    }
  }

  std::set<std::string> ObjectsOf(uint32_t id) const {
    const auto it = bindings_.find(id);
    return it == bindings_.end() ? std::set<std::string>{} : it->second;
  }

  void Classify(const ir::Instr& access) {
    MemAccessInfo info;
    info.instr = &access;
    info.is_store =
        access.kind == ir::OpKind::kStore || access.kind == ir::OpKind::kRmemStore;
    info.bytes = access.mem.bytes;
    info.loop_depth = static_cast<int>(loops_.size());
    if (!loops_.empty()) {
      info.loop_body = loops_.back().body;
      info.loop_body_ops = CountOps(*loops_.back().body);
    }
    const uint32_t addr_id = access.operands[0];
    info.objects = ObjectsOf(addr_id);
    const auto def_it = defs_.find(addr_id);
    const ir::Instr* addr_def = def_it == defs_.end() ? nullptr : def_it->second;
    if (addr_def != nullptr && addr_def->kind == ir::OpKind::kIndex) {
      info.elem_bytes = static_cast<uint32_t>(std::abs(addr_def->i_attr));
      info.field_offset = addr_def->i_attr2;
      if (info.objects.empty()) {
        info.objects = ObjectsOf(addr_def->operands[0]);
      }
      const Scev idx = Analyze(addr_def->operands[1], 0);
      const int64_t step = loops_.empty() ? 1 : loops_.back().step;
      switch (idx.kind) {
        case Scev::Kind::kAffine: {
          info.stride_bytes = idx.coeff * step * addr_def->i_attr;
          const int64_t elem = addr_def->i_attr;
          info.pattern = (info.stride_bytes == elem) ? AccessPattern::kSequential
                                                     : AccessPattern::kStrided;
          if (info.stride_bytes == 0) {
            info.pattern = AccessPattern::kUnknown;  // invariant address
          }
          break;
        }
        case Scev::Kind::kFromLoad:
          info.pattern = AccessPattern::kIndirect;
          if (idx.src_load != nullptr) {
            const auto src_def = defs_.find(idx.src_load->operands[0]);
            if (src_def != defs_.end() && src_def->second->kind == ir::OpKind::kIndex) {
              info.index_source_objects = ObjectsOf(src_def->second->operands[0]);
            } else {
              info.index_source_objects = ObjectsOf(idx.src_load->operands[0]);
            }
          }
          break;
        case Scev::Kind::kFromLocal:
        case Scev::Kind::kConst:
        case Scev::Kind::kOther:
          info.pattern = AccessPattern::kUnknown;
          break;
      }
    } else if (addr_def != nullptr &&
               (addr_def->kind == ir::OpKind::kLoad ||
                addr_def->kind == ir::OpKind::kRmemLoad)) {
      info.pattern = AccessPattern::kPointerChase;
    } else {
      info.pattern = AccessPattern::kUnknown;
    }
    for (const auto& o : info.objects) {
      out_->touched_objects.insert(o);
    }
    out_->accesses.push_back(std::move(info));
  }

  void Walk(const ir::Region& region) {
    for (const auto& instr : region.body) {
      if (ir::IsMemoryAccess(instr.kind)) {
        Classify(instr);
      }
      if (instr.kind == ir::OpKind::kFor) {
        LoopCtx ctx;
        ctx.loop = &instr;
        ctx.iv = instr.regions[0].args[0];
        int64_t step = 1;
        if (!ConstOf(instr.operands[2], &step)) {
          step = 1;
        }
        ctx.step = step;
        ctx.body = &instr.regions[0];
        loops_.push_back(ctx);
        Walk(instr.regions[0]);
        loops_.pop_back();
      } else {
        for (const auto& sub : instr.regions) {
          Walk(sub);
        }
      }
    }
  }

  const ir::Function& func_;
  const std::map<uint32_t, std::set<std::string>>& bindings_;
  FunctionAccessInfo* out_;
  std::map<uint32_t, const ir::Instr*> defs_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

void AccessAnalysis::BindPointers() {
  // Fixpoint forward dataflow. Within a function: alloc/result propagation;
  // across calls: argument bindings flow into parameter bindings.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < 32) {
    changed = false;
    ++rounds;
    for (const auto& f : module_->functions) {
      auto& b = bindings_[f->name];
      std::function<void(const ir::Region&)> walk = [&](const ir::Region& region) {
        for (const auto& instr : region.body) {
          if (instr.kind == ir::OpKind::kAlloc) {
            auto& dst = b[instr.result];
            if (dst.insert(instr.s_attr).second) {
              changed = true;
            }
          } else if (instr.kind == ir::OpKind::kIndex ||
                     instr.kind == ir::OpKind::kSelect) {
            // Propagate from ptr operands to result.
            for (const uint32_t op : instr.operands) {
              if (f->ValueType(op) == ir::Type::kPtr) {
                for (const auto& label : b[op]) {
                  if (b[instr.result].insert(label).second) {
                    changed = true;
                  }
                }
              }
            }
          } else if (instr.kind == ir::OpKind::kCall ||
                     instr.kind == ir::OpKind::kOffloadCall) {
            const ir::Function& callee = *module_->functions[instr.callee];
            auto& cb = bindings_[callee.name];
            for (size_t i = 0; i < instr.operands.size(); ++i) {
              if (callee.param_types[i] == ir::Type::kPtr) {
                for (const auto& label : b[instr.operands[i]]) {
                  if (cb[callee.params[i]].insert(label).second) {
                    changed = true;
                  }
                }
              }
            }
          }
          for (const auto& sub : instr.regions) {
            walk(sub);
          }
        }
      };
      walk(f->body);
    }
  }
}

void AccessAnalysis::ClassifyFunction(const ir::Function& func) {
  FunctionClassifier(func, bindings_[func.name], &infos_[func.name]).Run();
}

void AccessAnalysis::Run() {
  BindPointers();
  for (const auto& f : module_->functions) {
    ClassifyFunction(*f);
  }
}

const FunctionAccessInfo& AccessAnalysis::ForFunction(const std::string& name) const {
  const auto it = infos_.find(name);
  if (it != infos_.end()) {
    return it->second;
  }
  static const FunctionAccessInfo kEmpty;
  return kEmpty;
}

const std::map<uint32_t, std::set<std::string>>& AccessAnalysis::Bindings(
    const std::string& name) const {
  const auto it = bindings_.find(name);
  if (it != bindings_.end()) {
    return it->second;
  }
  static const std::map<uint32_t, std::set<std::string>> kEmpty;
  return kEmpty;
}

ObjectBehavior AccessAnalysis::Summarize(const std::string& object,
                                         const std::set<std::string>& functions) const {
  ObjectBehavior behavior;
  behavior.label = object;
  // Pattern priority: an object accessed sequentially somewhere but
  // indirectly elsewhere is dominated by the "harder" pattern. kUnknown
  // (e.g., data-dependent cursors, random indices) outranks the contiguous
  // patterns — a cold sequential init loop must not mask a hot random
  // consumer — but not the indirect/pointer-chase patterns, which already
  // get conflict-tolerant structures plus runahead prefetch.
  auto rank = [](AccessPattern p) {
    switch (p) {
      case AccessPattern::kSequential:
        return 0;
      case AccessPattern::kStrided:
        return 1;
      case AccessPattern::kUnknown:
        return 2;
      case AccessPattern::kIndirect:
        return 3;
      case AccessPattern::kPointerChase:
        return 4;
    }
    return 4;
  };
  bool have_pattern = false;
  for (const auto& [fname, info] : infos_) {
    if (!functions.empty() && functions.find(fname) == functions.end()) {
      continue;
    }
    for (const auto& a : info.accesses) {
      if (a.objects.find(object) == a.objects.end()) {
        continue;
      }
      if (!a.is_store) {
        behavior.has_reads = true;
      } else {
        behavior.has_writes = true;
      }
      // The hardest pattern (by the ranking above) dominates.
      if (!have_pattern || rank(a.pattern) > rank(behavior.pattern)) {
        behavior.pattern = a.pattern;
        behavior.stride_bytes = a.stride_bytes;
        have_pattern = true;
      }
      if (a.elem_bytes > behavior.elem_bytes) {
        behavior.elem_bytes = a.elem_bytes;
      }
      auto& len = behavior.fields[a.field_offset];
      len = std::max(len, a.bytes);
      behavior.loop_body_ops = std::max(behavior.loop_body_ops, a.loop_body_ops);
    }
  }
  return behavior;
}

}  // namespace mira::analysis
