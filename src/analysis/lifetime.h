// Lifetime analysis (paper §4.2 "we use lifetime analysis to determine when
// to start and end a section", §5.2.2).
//
// For a chosen root function (the program's driver), objects' lifetimes are
// expressed as intervals over the sequence of *top-level statements* of that
// function's body — a loop nest or a call counts as one statement. The
// interval of an object starts at the first statement that may touch it and
// ends at the last. These phases feed:
//   - kLifetimeEnd insertion (release a section the moment its data dies);
//   - the ILP section-sizing constraint "at any time, the total size of
//     live sections fits in local memory" (§4.3).

#ifndef MIRA_SRC_ANALYSIS_LIFETIME_H_
#define MIRA_SRC_ANALYSIS_LIFETIME_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/analysis/access_analysis.h"
#include "src/ir/ir.h"

namespace mira::analysis {

struct ObjectLifetime {
  int first_stmt = -1;
  int last_stmt = -1;
  // The object is only read after `last_write_stmt` (safe to discard
  // instead of writing back when releasing past that point).
  bool read_only = false;

  bool OverlapsWith(const ObjectLifetime& other) const {
    return first_stmt <= other.last_stmt && other.first_stmt <= last_stmt;
  }
};

class LifetimeAnalysis {
 public:
  LifetimeAnalysis(const ir::Module* module, const AccessAnalysis* access)
      : module_(module), access_(access) {}

  // Computes lifetimes of all objects w.r.t. `root`'s top-level statements.
  void Run(const std::string& root);

  const std::map<std::string, ObjectLifetime>& lifetimes() const { return lifetimes_; }
  int statement_count() const { return statement_count_; }

  // Objects live during top-level statement `stmt`.
  std::set<std::string> LiveAt(int stmt) const;

 private:
  // All objects possibly touched by a statement (including through calls).
  void CollectTouched(const ir::Function& func, const ir::Instr& instr,
                      std::set<std::string>* out, int depth) const;
  void CollectTouchedRegion(const ir::Function& func, const ir::Region& region,
                            std::set<std::string>* out, int depth) const;
  void CollectCalleeAllocs(const ir::Function& callee, std::set<std::string>* out,
                           int depth) const;
  bool StmtWrites(const ir::Function& func, const ir::Instr& instr, const std::string& obj,
                  int depth) const;

  const ir::Module* module_;
  const AccessAnalysis* access_;
  std::map<std::string, ObjectLifetime> lifetimes_;
  int statement_count_ = 0;
};

}  // namespace mira::analysis

#endif  // MIRA_SRC_ANALYSIS_LIFETIME_H_
