// Offload-candidate analysis (paper §4.8): which functions are worth
// running on the far-memory node. A function is a candidate if it has no
// shared writable data with concurrent threads (we analyze single-threaded
// programs here, so: any function that only touches remotable objects and
// its own locals). The decision weighs local execution (network transfers
// for the data it touches) against remote execution (slower far-node CPU +
// one RPC round trip).

#ifndef MIRA_SRC_ANALYSIS_OFFLOAD_COST_H_
#define MIRA_SRC_ANALYSIS_OFFLOAD_COST_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/analysis/access_analysis.h"
#include "src/ir/ir.h"
#include "src/sim/cost_model.h"

namespace mira::analysis {

struct OffloadEstimate {
  bool candidate = false;     // structurally offloadable
  uint64_t compute_ops = 0;   // static op count (× trip estimates)
  uint64_t mem_accesses = 0;  // static access count (× trip estimates)
  // Profiled (or estimated) bytes moved if executed locally.
  uint64_t local_traffic_bytes = 0;
  // Expected benefit in ns (>0 ⇒ offload).
  int64_t benefit_ns = 0;
};

class OffloadCostAnalysis {
 public:
  OffloadCostAnalysis(const ir::Module* module, const AccessAnalysis* access,
                      const sim::CostModel& cost)
      : module_(module), access_(access), cost_(cost) {}

  // `profiled_traffic`: per-function bytes fetched from far memory during
  // the profiling run (0 if unknown → static estimate).
  void Run(const std::map<std::string, uint64_t>& profiled_traffic);

  const std::map<std::string, OffloadEstimate>& estimates() const { return estimates_; }

 private:
  const ir::Module* module_;
  const AccessAnalysis* access_;
  const sim::CostModel& cost_;
  std::map<std::string, OffloadEstimate> estimates_;
};

}  // namespace mira::analysis

#endif  // MIRA_SRC_ANALYSIS_OFFLOAD_COST_H_
