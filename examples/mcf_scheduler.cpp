// MCF-style vehicle scheduling on far memory — the paper's least
// analysis-friendly application (pointer-value-dependent accesses). Shows
// how Mira falls back gracefully: sequential arc pricing gets a streaming
// section with indirect prefetch; the pointer-chasing tree walk stays on
// the generic swap section (or a lookup section when memory is scarce);
// AIFM's per-element metadata makes it fail outright below ~3× the
// footprint (paper Fig 18).
//
// Run: ./build/examples/mcf_scheduler

#include <cstdio>

#include "src/interp/interpreter.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/world.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/workloads.h"

using namespace mira;

namespace {

uint64_t RunOn(const ir::Module& module, pipeline::SystemKind kind, uint64_t local_bytes,
               runtime::CachePlan plan, bool* failed) {
  auto world = pipeline::MakeWorld(kind, local_bytes, std::move(plan));
  interp::Interpreter interp(&module, world.backend.get());
  auto r = interp.Run("main");
  if (!r.ok()) {
    *failed = true;
    return 0;
  }
  *failed = false;
  world.backend->Drain(interp.clock());
  return interp.clock().now_ns();
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out=<f>.json / --metrics-out=<f>.json dump the run telemetry.
  const telemetry::OutputOptions touts = telemetry::ParseOutputFlags(&argc, argv);
  workloads::Workload w = workloads::BuildMcf();
  std::printf("MCF scheduler: %s of arcs + nodes\n\n",
              support::HumanBytes(w.footprint_bytes).c_str());
  bool failed = false;
  const uint64_t native = RunOn(*w.module, pipeline::SystemKind::kNative, 0, {}, &failed);

  std::printf("%8s %12s %12s %12s %12s\n", "local%", "mira", "fastswap", "leap", "aifm");
  for (const int pct : {25, 50, 75, 100, 180, 320}) {
    const uint64_t local = w.footprint_bytes * static_cast<uint64_t>(pct) / 100;
    pipeline::OptimizeOptions opts;
    opts.local_bytes = local;
    opts.max_iterations = 2;
    pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
    auto compiled = optimizer.Optimize();
    bool f_mira = false, f_fast = false, f_leap = false, f_aifm = false;
    const uint64_t mira =
        RunOn(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan, &f_mira);
    const uint64_t fast = RunOn(*w.module, pipeline::SystemKind::kFastSwap, local, {}, &f_fast);
    const uint64_t leap = RunOn(*w.module, pipeline::SystemKind::kLeap, local, {}, &f_leap);
    const uint64_t aifm = RunOn(*w.module, pipeline::SystemKind::kAifm, local, {}, &f_aifm);
    auto cell = [&](uint64_t ns, bool fail) {
      return fail ? std::string("DNF")
                  : support::StrFormat("%.1f ms", static_cast<double>(ns) / 1e6);
    };
    std::printf("%7d%% %12s %12s %12s %12s\n", pct, cell(mira, f_mira).c_str(),
                cell(fast, f_fast).c_str(), cell(leap, f_leap).c_str(),
                cell(aifm, f_aifm).c_str());
  }
  std::printf("\n(native full-memory run: %.1f ms; AIFM 'DNF' = remoteable-pointer\n"
              "metadata exceeded local memory, as in the paper's Fig 18.)\n",
              static_cast<double>(native) / 1e6);
  telemetry::FlushOutputs(touts);
  return 0;
}
