// GPT-2-style transformer inference on far memory: Mira's lifetime analysis
// ends each layer's section the moment the layer completes, so a sliver of
// local memory streams the whole model (paper Fig 17: flat performance down
// to 4.5 % local memory).
//
// Run: ./build/examples/gpt2_inference

#include <cstdio>

#include "src/interp/interpreter.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/world.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/workloads.h"

using namespace mira;

namespace {

uint64_t RunOn(const ir::Module& module, pipeline::SystemKind kind, uint64_t local_bytes,
               runtime::CachePlan plan = {}) {
  auto world = pipeline::MakeWorld(kind, local_bytes, std::move(plan));
  interp::Interpreter interp(&module, world.backend.get());
  auto r = interp.Run("main");
  MIRA_CHECK(r.ok());
  world.backend->Drain(interp.clock());
  return interp.clock().now_ns();
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out=<f>.json / --metrics-out=<f>.json dump the run telemetry.
  const telemetry::OutputOptions touts = telemetry::ParseOutputFlags(&argc, argv);
  workloads::Workload w = workloads::BuildGpt2();
  std::printf("GPT-2-like inference: %s of weights + KV cache\n\n",
              support::HumanBytes(w.footprint_bytes).c_str());

  const uint64_t native = RunOn(*w.module, pipeline::SystemKind::kNative, 0);
  std::printf("%8s %12s %12s %12s   (normalized to native %0.3f ms)\n", "local%", "mira",
              "fastswap", "leap", static_cast<double>(native) / 1e6);

  for (const int pct : {4, 10, 25, 50, 100}) {
    const uint64_t local = w.footprint_bytes * static_cast<uint64_t>(pct) / 100;
    pipeline::OptimizeOptions opts;
    opts.local_bytes = local;
    opts.max_iterations = 2;
    opts.planner.enable_offload = false;
    pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
    auto compiled = optimizer.Optimize();
    const uint64_t mira =
        RunOn(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
    const uint64_t fast = RunOn(*w.module, pipeline::SystemKind::kFastSwap, local);
    const uint64_t leap = RunOn(*w.module, pipeline::SystemKind::kLeap, local);
    std::printf("%7d%% %11.3f %12.3f %12.3f   norm: %.2f / %.2f / %.2f\n", pct,
                static_cast<double>(mira) / 1e6, static_cast<double>(fast) / 1e6,
                static_cast<double>(leap) / 1e6,
                static_cast<double>(native) / static_cast<double>(mira),
                static_cast<double>(native) / static_cast<double>(fast),
                static_cast<double>(native) / static_cast<double>(leap));
  }
  std::printf("\nLayer-by-layer lifetimes let Mira release each layer's weights as soon\n"
              "as the layer finishes — performance stays flat as local memory shrinks.\n");
  telemetry::FlushOutputs(touts);
  return 0;
}
