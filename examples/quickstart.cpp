// Quickstart: the full Mira flow on the paper's rundown example (Fig 4).
//
//   1. Write a program for local memory (the graph-traversal workload).
//   2. Hand it to the iterative optimizer: profile on the generic swap
//      cache → analyze → derive cache sections → compile remote code →
//      size sections (sampling + ILP) → iterate.
//   3. Execute the compiled program on the Mira runtime and compare with
//      FastSwap / Leap / AIFM and native execution.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "src/interp/interpreter.h"
#include "src/ir/printer.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/world.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/workloads.h"

using namespace mira;

namespace {

uint64_t RunOn(const ir::Module& module, pipeline::SystemKind kind, uint64_t local_bytes,
               runtime::CachePlan plan = {}) {
  auto world = pipeline::MakeWorld(kind, local_bytes, std::move(plan));
  interp::Interpreter interp(&module, world.backend.get());
  auto r = interp.Run("main");
  if (!r.ok()) {
    std::printf("    %-10s  FAILED: %s\n", pipeline::SystemName(kind),
                r.status().ToString().c_str());
    return 0;
  }
  world.backend->Drain(interp.clock());
  return interp.clock().now_ns();
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out=<f>.json / --metrics-out=<f>.json dump the run telemetry.
  const telemetry::OutputOptions touts = telemetry::ParseOutputFlags(&argc, argv);
  // 1. An unmodified program, written as if all memory were local.
  workloads::Workload w = workloads::BuildGraphTraversal();
  std::printf("workload: %s (%s of far data)\n", w.name.c_str(),
              support::HumanBytes(w.footprint_bytes).c_str());

  const uint64_t local = w.footprint_bytes / 2;  // 50 % local memory
  std::printf("local memory: %s (50%% of footprint)\n\n",
              support::HumanBytes(local).c_str());

  // 2. The Figure-1 loop: profile → analyze → configure → compile → size →
  //    iterate (with rollback).
  pipeline::OptimizeOptions opts;
  opts.local_bytes = local;
  opts.max_iterations = 3;
  opts.verbose = false;
  pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
  pipeline::CompiledProgram compiled = optimizer.Optimize();

  std::printf("== optimization iterations ==\n");
  for (const auto& it : optimizer.log()) {
    std::printf("  iter %d: %8.3f ms  (%zu funcs, %zu objects, %zu sections)%s\n",
                it.iteration, static_cast<double>(it.time_ns) / 1e6, it.functions_selected,
                it.objects_selected, it.sections, it.rolled_back ? "  [rolled back]" : "");
  }
  std::printf("\n== derived cache plan ==\n%s\n", compiled.plan.ToString().c_str());

  std::printf("== compiled traverse() (rmem dialect) ==\n%s\n",
              ir::PrintFunction(*compiled.module.FindFunction("traverse")).c_str());

  // 3. Compare systems. All run the same computation on identical data.
  std::printf("== end-to-end comparison (simulated time) ==\n");
  const uint64_t native = RunOn(*w.module, pipeline::SystemKind::kNative, 0);
  const uint64_t swap = optimizer.baseline_swap_ns();
  const uint64_t fastswap = RunOn(*w.module, pipeline::SystemKind::kFastSwap, local);
  const uint64_t leap = RunOn(*w.module, pipeline::SystemKind::kLeap, local);
  const uint64_t aifm = RunOn(*w.module, pipeline::SystemKind::kAifm, local);
  const uint64_t mira =
      RunOn(compiled.module, pipeline::SystemKind::kMira, local, compiled.plan);
  auto row = [&](const char* name, uint64_t ns) {
    if (ns == 0) {
      std::printf("    %-22s %12s\n", name, "DNF");
      return;
    }
    std::printf("    %-22s %9.3f ms   norm %.3f   vs fastswap %6.2fx\n", name,
                static_cast<double>(ns) / 1e6,
                static_cast<double>(native) / static_cast<double>(ns),
                static_cast<double>(fastswap) / static_cast<double>(ns));
  };
  row("native (full memory)", native);
  row("mira (optimized)", mira);
  row("mira initial (swap)", swap);
  row("fastswap", fastswap);
  row("leap", leap);
  row("aifm", aifm);
  telemetry::FlushOutputs(touts);
  return 0;
}
