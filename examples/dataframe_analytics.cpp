// DataFrame analytics over synthetic taxi-trip data: trains Mira's
// compilation on one data year (seed 2014) and deploys it on unseen years,
// demonstrating input adaptation (§3) and the per-operator optimizations —
// full-line filter writes, fused/batched avg-min-max (Fig 23), indirect
// group-by, and selective transmission on a wide row table.
//
// Run: ./build/examples/dataframe_analytics

#include <cstdio>

#include "src/interp/interpreter.h"
#include "src/pipeline/optimizer.h"
#include "src/pipeline/world.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/workloads.h"

using namespace mira;

namespace {

struct Measured {
  uint64_t ns = 0;
  uint64_t net_bytes = 0;
  bool failed = false;
};

Measured RunOn(const ir::Module& module, pipeline::SystemKind kind, uint64_t local_bytes,
               uint64_t seed, runtime::CachePlan plan = {}) {
  auto world = pipeline::MakeWorld(kind, local_bytes, std::move(plan));
  interp::InterpOptions opts;
  opts.seed = seed;
  interp::Interpreter interp(&module, world.backend.get(), opts);
  auto r = interp.Run("main");
  Measured m;
  if (!r.ok()) {
    m.failed = true;
    return m;
  }
  world.backend->Drain(interp.clock());
  m.ns = interp.clock().now_ns();
  m.net_bytes = world.net->stats().total_bytes();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out=<f>.json / --metrics-out=<f>.json dump the run telemetry.
  const telemetry::OutputOptions touts = telemetry::ParseOutputFlags(&argc, argv);
  workloads::Workload w = workloads::BuildDataFrame();
  const uint64_t local = w.footprint_bytes / 4;  // 25 % local memory
  std::printf("DataFrame: %s far data, %s local memory\n",
              support::HumanBytes(w.footprint_bytes).c_str(),
              support::HumanBytes(local).c_str());

  // Train on the 2014 data year.
  pipeline::OptimizeOptions opts;
  opts.local_bytes = local;
  opts.max_iterations = 3;
  opts.train_seed = 2014;
  pipeline::IterativeOptimizer optimizer(w.module.get(), opts);
  auto compiled = optimizer.Optimize();
  std::printf("\ntrained cache plan (on 2014 data):\n%s\n", compiled.plan.ToString().c_str());

  // Deploy on unseen years.
  std::printf("%-18s %14s %14s %14s %12s\n", "test year (seed)", "mira", "fastswap", "aifm",
              "net traffic");
  for (const uint64_t year : {2015ULL, 2016ULL}) {
    const Measured mira =
        RunOn(compiled.module, pipeline::SystemKind::kMira, local, year, compiled.plan);
    const Measured fast = RunOn(*w.module, pipeline::SystemKind::kFastSwap, local, year);
    const Measured aifm = RunOn(*w.module, pipeline::SystemKind::kAifm, local, year);
    std::printf("%-18llu %11.3f ms %11.3f ms %11.3f ms %12s\n",
                static_cast<unsigned long long>(year), static_cast<double>(mira.ns) / 1e6,
                static_cast<double>(fast.ns) / 1e6,
                aifm.failed ? 0.0 : static_cast<double>(aifm.ns) / 1e6,
                support::HumanBytes(mira.net_bytes).c_str());
  }
  std::printf("\nMira's compilation, trained on one input year, carries over to unseen\n"
              "inputs: the optimizations are program-based, not trace-based (§4.5).\n");
  telemetry::FlushOutputs(touts);
  return 0;
}
