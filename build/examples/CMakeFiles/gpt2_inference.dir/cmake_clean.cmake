file(REMOVE_RECURSE
  "CMakeFiles/gpt2_inference.dir/gpt2_inference.cpp.o"
  "CMakeFiles/gpt2_inference.dir/gpt2_inference.cpp.o.d"
  "gpt2_inference"
  "gpt2_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpt2_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
