# Empty compiler generated dependencies file for gpt2_inference.
# This may be replaced when dependencies are built.
