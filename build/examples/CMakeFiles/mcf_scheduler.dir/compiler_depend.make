# Empty compiler generated dependencies file for mcf_scheduler.
# This may be replaced when dependencies are built.
