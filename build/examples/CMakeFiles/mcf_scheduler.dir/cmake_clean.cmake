file(REMOVE_RECURSE
  "CMakeFiles/mcf_scheduler.dir/mcf_scheduler.cpp.o"
  "CMakeFiles/mcf_scheduler.dir/mcf_scheduler.cpp.o.d"
  "mcf_scheduler"
  "mcf_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcf_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
