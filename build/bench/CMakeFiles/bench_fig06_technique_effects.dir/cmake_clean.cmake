file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_technique_effects.dir/bench_fig06_technique_effects.cc.o"
  "CMakeFiles/bench_fig06_technique_effects.dir/bench_fig06_technique_effects.cc.o.d"
  "bench_fig06_technique_effects"
  "bench_fig06_technique_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_technique_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
