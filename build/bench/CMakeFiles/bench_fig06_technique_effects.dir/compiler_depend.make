# Empty compiler generated dependencies file for bench_fig06_technique_effects.
# This may be replaced when dependencies are built.
