file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_node_missrate.dir/bench_fig08_node_missrate.cc.o"
  "CMakeFiles/bench_fig08_node_missrate.dir/bench_fig08_node_missrate.cc.o.d"
  "bench_fig08_node_missrate"
  "bench_fig08_node_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_node_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
