# Empty dependencies file for bench_fig08_node_missrate.
# This may be replaced when dependencies are built.
