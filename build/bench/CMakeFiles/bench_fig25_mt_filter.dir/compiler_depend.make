# Empty compiler generated dependencies file for bench_fig25_mt_filter.
# This may be replaced when dependencies are built.
