file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_mt_filter.dir/bench_fig25_mt_filter.cc.o"
  "CMakeFiles/bench_fig25_mt_filter.dir/bench_fig25_mt_filter.cc.o.d"
  "bench_fig25_mt_filter"
  "bench_fig25_mt_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_mt_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
