# Empty compiler generated dependencies file for bench_fig07_section_separation.
# This may be replaced when dependencies are built.
