file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_section_separation.dir/bench_fig07_section_separation.cc.o"
  "CMakeFiles/bench_fig07_section_separation.dir/bench_fig07_section_separation.cc.o.d"
  "bench_fig07_section_separation"
  "bench_fig07_section_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_section_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
