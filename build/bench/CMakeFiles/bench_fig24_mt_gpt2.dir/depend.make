# Empty dependencies file for bench_fig24_mt_gpt2.
# This may be replaced when dependencies are built.
