
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig24_mt_gpt2.cc" "bench/CMakeFiles/bench_fig24_mt_gpt2.dir/bench_fig24_mt_gpt2.cc.o" "gcc" "bench/CMakeFiles/bench_fig24_mt_gpt2.dir/bench_fig24_mt_gpt2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mira_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/mira_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mira_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mira_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/mira_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mira_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/mira_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mira_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mira_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mira_net.dir/DependInfo.cmake"
  "/root/repo/build/src/farmem/CMakeFiles/mira_farmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
