# Empty compiler generated dependencies file for bench_fig17_gpt2.
# This may be replaced when dependencies are built.
