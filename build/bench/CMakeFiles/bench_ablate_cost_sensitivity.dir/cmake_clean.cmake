file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_cost_sensitivity.dir/bench_ablate_cost_sensitivity.cc.o"
  "CMakeFiles/bench_ablate_cost_sensitivity.dir/bench_ablate_cost_sensitivity.cc.o.d"
  "bench_ablate_cost_sensitivity"
  "bench_ablate_cost_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_cost_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
