file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_mcf.dir/bench_fig18_mcf.cc.o"
  "CMakeFiles/bench_fig18_mcf.dir/bench_fig18_mcf.cc.o.d"
  "bench_fig18_mcf"
  "bench_fig18_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
