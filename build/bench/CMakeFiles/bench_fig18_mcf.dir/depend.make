# Empty dependencies file for bench_fig18_mcf.
# This may be replaced when dependencies are built.
