# Empty dependencies file for bench_fig05_graph_overall.
# This may be replaced when dependencies are built.
