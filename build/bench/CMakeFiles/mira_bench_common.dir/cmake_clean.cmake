file(REMOVE_RECURSE
  "CMakeFiles/mira_bench_common.dir/common.cc.o"
  "CMakeFiles/mira_bench_common.dir/common.cc.o.d"
  "libmira_bench_common.a"
  "libmira_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
