file(REMOVE_RECURSE
  "libmira_bench_common.a"
)
