# Empty dependencies file for mira_bench_common.
# This may be replaced when dependencies are built.
