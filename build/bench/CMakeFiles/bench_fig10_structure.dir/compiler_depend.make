# Empty compiler generated dependencies file for bench_fig10_structure.
# This may be replaced when dependencies are built.
