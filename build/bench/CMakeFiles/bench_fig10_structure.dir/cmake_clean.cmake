file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_structure.dir/bench_fig10_structure.cc.o"
  "CMakeFiles/bench_fig10_structure.dir/bench_fig10_structure.cc.o.d"
  "bench_fig10_structure"
  "bench_fig10_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
