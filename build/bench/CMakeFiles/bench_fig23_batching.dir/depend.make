# Empty dependencies file for bench_fig23_batching.
# This may be replaced when dependencies are built.
