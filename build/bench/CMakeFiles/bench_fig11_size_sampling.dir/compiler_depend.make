# Empty compiler generated dependencies file for bench_fig11_size_sampling.
# This may be replaced when dependencies are built.
