file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_size_sampling.dir/bench_fig11_size_sampling.cc.o"
  "CMakeFiles/bench_fig11_size_sampling.dir/bench_fig11_size_sampling.cc.o.d"
  "bench_fig11_size_sampling"
  "bench_fig11_size_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_size_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
