file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ilp_partition.dir/bench_fig12_ilp_partition.cc.o"
  "CMakeFiles/bench_fig12_ilp_partition.dir/bench_fig12_ilp_partition.cc.o.d"
  "bench_fig12_ilp_partition"
  "bench_fig12_ilp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ilp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
