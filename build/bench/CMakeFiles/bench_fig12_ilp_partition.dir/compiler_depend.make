# Empty compiler generated dependencies file for bench_fig12_ilp_partition.
# This may be replaced when dependencies are built.
