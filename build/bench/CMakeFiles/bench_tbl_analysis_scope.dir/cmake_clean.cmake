file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl_analysis_scope.dir/bench_tbl_analysis_scope.cc.o"
  "CMakeFiles/bench_tbl_analysis_scope.dir/bench_tbl_analysis_scope.cc.o.d"
  "bench_tbl_analysis_scope"
  "bench_tbl_analysis_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl_analysis_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
