# Empty dependencies file for bench_tbl_analysis_scope.
# This may be replaced when dependencies are built.
