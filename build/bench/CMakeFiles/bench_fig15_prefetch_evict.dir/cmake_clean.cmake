file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_prefetch_evict.dir/bench_fig15_prefetch_evict.cc.o"
  "CMakeFiles/bench_fig15_prefetch_evict.dir/bench_fig15_prefetch_evict.cc.o.d"
  "bench_fig15_prefetch_evict"
  "bench_fig15_prefetch_evict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_prefetch_evict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
