# Empty dependencies file for bench_fig15_prefetch_evict.
# This may be replaced when dependencies are built.
