file(REMOVE_RECURSE
  "libmira_sim.a"
)
