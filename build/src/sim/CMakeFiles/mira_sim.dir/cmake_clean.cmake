file(REMOVE_RECURSE
  "CMakeFiles/mira_sim.dir/cost_model.cc.o"
  "CMakeFiles/mira_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/mira_sim.dir/mt_scheduler.cc.o"
  "CMakeFiles/mira_sim.dir/mt_scheduler.cc.o.d"
  "libmira_sim.a"
  "libmira_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
