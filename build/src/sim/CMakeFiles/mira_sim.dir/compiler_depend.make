# Empty compiler generated dependencies file for mira_sim.
# This may be replaced when dependencies are built.
