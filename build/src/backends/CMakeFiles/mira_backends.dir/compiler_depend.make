# Empty compiler generated dependencies file for mira_backends.
# This may be replaced when dependencies are built.
