file(REMOVE_RECURSE
  "libmira_backends.a"
)
