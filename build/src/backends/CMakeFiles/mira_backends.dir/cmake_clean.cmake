file(REMOVE_RECURSE
  "CMakeFiles/mira_backends.dir/aifm_backend.cc.o"
  "CMakeFiles/mira_backends.dir/aifm_backend.cc.o.d"
  "CMakeFiles/mira_backends.dir/backend.cc.o"
  "CMakeFiles/mira_backends.dir/backend.cc.o.d"
  "CMakeFiles/mira_backends.dir/mira_backend.cc.o"
  "CMakeFiles/mira_backends.dir/mira_backend.cc.o.d"
  "libmira_backends.a"
  "libmira_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
