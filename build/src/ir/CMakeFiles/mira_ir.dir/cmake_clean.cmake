file(REMOVE_RECURSE
  "CMakeFiles/mira_ir.dir/builder.cc.o"
  "CMakeFiles/mira_ir.dir/builder.cc.o.d"
  "CMakeFiles/mira_ir.dir/ir.cc.o"
  "CMakeFiles/mira_ir.dir/ir.cc.o.d"
  "CMakeFiles/mira_ir.dir/printer.cc.o"
  "CMakeFiles/mira_ir.dir/printer.cc.o.d"
  "CMakeFiles/mira_ir.dir/verifier.cc.o"
  "CMakeFiles/mira_ir.dir/verifier.cc.o.d"
  "libmira_ir.a"
  "libmira_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
