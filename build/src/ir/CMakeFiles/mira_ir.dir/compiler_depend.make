# Empty compiler generated dependencies file for mira_ir.
# This may be replaced when dependencies are built.
