file(REMOVE_RECURSE
  "CMakeFiles/mira_pipeline.dir/adaptive.cc.o"
  "CMakeFiles/mira_pipeline.dir/adaptive.cc.o.d"
  "CMakeFiles/mira_pipeline.dir/optimizer.cc.o"
  "CMakeFiles/mira_pipeline.dir/optimizer.cc.o.d"
  "CMakeFiles/mira_pipeline.dir/planner.cc.o"
  "CMakeFiles/mira_pipeline.dir/planner.cc.o.d"
  "CMakeFiles/mira_pipeline.dir/world.cc.o"
  "CMakeFiles/mira_pipeline.dir/world.cc.o.d"
  "libmira_pipeline.a"
  "libmira_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
