# Empty dependencies file for mira_pipeline.
# This may be replaced when dependencies are built.
