file(REMOVE_RECURSE
  "libmira_pipeline.a"
)
