file(REMOVE_RECURSE
  "CMakeFiles/mira_support.dir/check.cc.o"
  "CMakeFiles/mira_support.dir/check.cc.o.d"
  "CMakeFiles/mira_support.dir/rng.cc.o"
  "CMakeFiles/mira_support.dir/rng.cc.o.d"
  "CMakeFiles/mira_support.dir/stats.cc.o"
  "CMakeFiles/mira_support.dir/stats.cc.o.d"
  "CMakeFiles/mira_support.dir/status.cc.o"
  "CMakeFiles/mira_support.dir/status.cc.o.d"
  "CMakeFiles/mira_support.dir/str.cc.o"
  "CMakeFiles/mira_support.dir/str.cc.o.d"
  "libmira_support.a"
  "libmira_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
