file(REMOVE_RECURSE
  "libmira_support.a"
)
