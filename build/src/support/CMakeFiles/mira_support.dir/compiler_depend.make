# Empty compiler generated dependencies file for mira_support.
# This may be replaced when dependencies are built.
