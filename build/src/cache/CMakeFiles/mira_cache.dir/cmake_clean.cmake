file(REMOVE_RECURSE
  "CMakeFiles/mira_cache.dir/lru.cc.o"
  "CMakeFiles/mira_cache.dir/lru.cc.o.d"
  "CMakeFiles/mira_cache.dir/section.cc.o"
  "CMakeFiles/mira_cache.dir/section.cc.o.d"
  "CMakeFiles/mira_cache.dir/section_config.cc.o"
  "CMakeFiles/mira_cache.dir/section_config.cc.o.d"
  "CMakeFiles/mira_cache.dir/section_manager.cc.o"
  "CMakeFiles/mira_cache.dir/section_manager.cc.o.d"
  "CMakeFiles/mira_cache.dir/swap_prefetcher.cc.o"
  "CMakeFiles/mira_cache.dir/swap_prefetcher.cc.o.d"
  "CMakeFiles/mira_cache.dir/swap_section.cc.o"
  "CMakeFiles/mira_cache.dir/swap_section.cc.o.d"
  "libmira_cache.a"
  "libmira_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
