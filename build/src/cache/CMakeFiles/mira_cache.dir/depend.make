# Empty dependencies file for mira_cache.
# This may be replaced when dependencies are built.
