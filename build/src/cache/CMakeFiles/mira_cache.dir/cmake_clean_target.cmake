file(REMOVE_RECURSE
  "libmira_cache.a"
)
