
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/lru.cc" "src/cache/CMakeFiles/mira_cache.dir/lru.cc.o" "gcc" "src/cache/CMakeFiles/mira_cache.dir/lru.cc.o.d"
  "/root/repo/src/cache/section.cc" "src/cache/CMakeFiles/mira_cache.dir/section.cc.o" "gcc" "src/cache/CMakeFiles/mira_cache.dir/section.cc.o.d"
  "/root/repo/src/cache/section_config.cc" "src/cache/CMakeFiles/mira_cache.dir/section_config.cc.o" "gcc" "src/cache/CMakeFiles/mira_cache.dir/section_config.cc.o.d"
  "/root/repo/src/cache/section_manager.cc" "src/cache/CMakeFiles/mira_cache.dir/section_manager.cc.o" "gcc" "src/cache/CMakeFiles/mira_cache.dir/section_manager.cc.o.d"
  "/root/repo/src/cache/swap_prefetcher.cc" "src/cache/CMakeFiles/mira_cache.dir/swap_prefetcher.cc.o" "gcc" "src/cache/CMakeFiles/mira_cache.dir/swap_prefetcher.cc.o.d"
  "/root/repo/src/cache/swap_section.cc" "src/cache/CMakeFiles/mira_cache.dir/swap_section.cc.o" "gcc" "src/cache/CMakeFiles/mira_cache.dir/swap_section.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mira_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mira_net.dir/DependInfo.cmake"
  "/root/repo/build/src/farmem/CMakeFiles/mira_farmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
