
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/access_analysis.cc" "src/analysis/CMakeFiles/mira_analysis.dir/access_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/mira_analysis.dir/access_analysis.cc.o.d"
  "/root/repo/src/analysis/lifetime.cc" "src/analysis/CMakeFiles/mira_analysis.dir/lifetime.cc.o" "gcc" "src/analysis/CMakeFiles/mira_analysis.dir/lifetime.cc.o.d"
  "/root/repo/src/analysis/offload_cost.cc" "src/analysis/CMakeFiles/mira_analysis.dir/offload_cost.cc.o" "gcc" "src/analysis/CMakeFiles/mira_analysis.dir/offload_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
