file(REMOVE_RECURSE
  "libmira_analysis.a"
)
