file(REMOVE_RECURSE
  "CMakeFiles/mira_analysis.dir/access_analysis.cc.o"
  "CMakeFiles/mira_analysis.dir/access_analysis.cc.o.d"
  "CMakeFiles/mira_analysis.dir/lifetime.cc.o"
  "CMakeFiles/mira_analysis.dir/lifetime.cc.o.d"
  "CMakeFiles/mira_analysis.dir/offload_cost.cc.o"
  "CMakeFiles/mira_analysis.dir/offload_cost.cc.o.d"
  "libmira_analysis.a"
  "libmira_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
