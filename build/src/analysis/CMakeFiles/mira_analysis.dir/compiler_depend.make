# Empty compiler generated dependencies file for mira_analysis.
# This may be replaced when dependencies are built.
