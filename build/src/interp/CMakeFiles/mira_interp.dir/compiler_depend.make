# Empty compiler generated dependencies file for mira_interp.
# This may be replaced when dependencies are built.
