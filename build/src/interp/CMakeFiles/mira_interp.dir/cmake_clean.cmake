file(REMOVE_RECURSE
  "CMakeFiles/mira_interp.dir/interpreter.cc.o"
  "CMakeFiles/mira_interp.dir/interpreter.cc.o.d"
  "libmira_interp.a"
  "libmira_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
