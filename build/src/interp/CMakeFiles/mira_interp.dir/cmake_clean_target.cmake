file(REMOVE_RECURSE
  "libmira_interp.a"
)
