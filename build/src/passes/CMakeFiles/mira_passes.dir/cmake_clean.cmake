file(REMOVE_RECURSE
  "CMakeFiles/mira_passes.dir/convert.cc.o"
  "CMakeFiles/mira_passes.dir/convert.cc.o.d"
  "CMakeFiles/mira_passes.dir/fuse.cc.o"
  "CMakeFiles/mira_passes.dir/fuse.cc.o.d"
  "CMakeFiles/mira_passes.dir/prefetch_evict.cc.o"
  "CMakeFiles/mira_passes.dir/prefetch_evict.cc.o.d"
  "CMakeFiles/mira_passes.dir/rewrite_util.cc.o"
  "CMakeFiles/mira_passes.dir/rewrite_util.cc.o.d"
  "libmira_passes.a"
  "libmira_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
