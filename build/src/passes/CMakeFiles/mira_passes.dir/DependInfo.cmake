
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/convert.cc" "src/passes/CMakeFiles/mira_passes.dir/convert.cc.o" "gcc" "src/passes/CMakeFiles/mira_passes.dir/convert.cc.o.d"
  "/root/repo/src/passes/fuse.cc" "src/passes/CMakeFiles/mira_passes.dir/fuse.cc.o" "gcc" "src/passes/CMakeFiles/mira_passes.dir/fuse.cc.o.d"
  "/root/repo/src/passes/prefetch_evict.cc" "src/passes/CMakeFiles/mira_passes.dir/prefetch_evict.cc.o" "gcc" "src/passes/CMakeFiles/mira_passes.dir/prefetch_evict.cc.o.d"
  "/root/repo/src/passes/rewrite_util.cc" "src/passes/CMakeFiles/mira_passes.dir/rewrite_util.cc.o" "gcc" "src/passes/CMakeFiles/mira_passes.dir/rewrite_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mira_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
