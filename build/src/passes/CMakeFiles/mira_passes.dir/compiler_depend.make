# Empty compiler generated dependencies file for mira_passes.
# This may be replaced when dependencies are built.
