file(REMOVE_RECURSE
  "libmira_passes.a"
)
