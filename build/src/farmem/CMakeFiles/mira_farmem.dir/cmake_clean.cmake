file(REMOVE_RECURSE
  "CMakeFiles/mira_farmem.dir/far_memory_node.cc.o"
  "CMakeFiles/mira_farmem.dir/far_memory_node.cc.o.d"
  "libmira_farmem.a"
  "libmira_farmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_farmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
