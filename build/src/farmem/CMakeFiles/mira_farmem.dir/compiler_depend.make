# Empty compiler generated dependencies file for mira_farmem.
# This may be replaced when dependencies are built.
