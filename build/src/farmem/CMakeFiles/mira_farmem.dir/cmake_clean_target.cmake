file(REMOVE_RECURSE
  "libmira_farmem.a"
)
