file(REMOVE_RECURSE
  "CMakeFiles/mira_solver.dir/ilp.cc.o"
  "CMakeFiles/mira_solver.dir/ilp.cc.o.d"
  "libmira_solver.a"
  "libmira_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
