# Empty compiler generated dependencies file for mira_solver.
# This may be replaced when dependencies are built.
