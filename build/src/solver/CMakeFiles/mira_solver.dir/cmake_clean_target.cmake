file(REMOVE_RECURSE
  "libmira_solver.a"
)
