file(REMOVE_RECURSE
  "libmira_net.a"
)
