# Empty compiler generated dependencies file for mira_net.
# This may be replaced when dependencies are built.
