file(REMOVE_RECURSE
  "CMakeFiles/mira_net.dir/__/farmem/local_allocator.cc.o"
  "CMakeFiles/mira_net.dir/__/farmem/local_allocator.cc.o.d"
  "CMakeFiles/mira_net.dir/transport.cc.o"
  "CMakeFiles/mira_net.dir/transport.cc.o.d"
  "libmira_net.a"
  "libmira_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
