# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sim")
subdirs("net")
subdirs("farmem")
subdirs("cache")
subdirs("runtime")
subdirs("backends")
subdirs("ir")
subdirs("analysis")
subdirs("passes")
subdirs("interp")
subdirs("solver")
subdirs("pipeline")
subdirs("workloads")
