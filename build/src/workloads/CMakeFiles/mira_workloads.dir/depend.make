# Empty dependencies file for mira_workloads.
# This may be replaced when dependencies are built.
