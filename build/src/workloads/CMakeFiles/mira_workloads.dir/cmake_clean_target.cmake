file(REMOVE_RECURSE
  "libmira_workloads.a"
)
