
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/arraysum.cc" "src/workloads/CMakeFiles/mira_workloads.dir/arraysum.cc.o" "gcc" "src/workloads/CMakeFiles/mira_workloads.dir/arraysum.cc.o.d"
  "/root/repo/src/workloads/dataframe.cc" "src/workloads/CMakeFiles/mira_workloads.dir/dataframe.cc.o" "gcc" "src/workloads/CMakeFiles/mira_workloads.dir/dataframe.cc.o.d"
  "/root/repo/src/workloads/gpt2.cc" "src/workloads/CMakeFiles/mira_workloads.dir/gpt2.cc.o" "gcc" "src/workloads/CMakeFiles/mira_workloads.dir/gpt2.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/mira_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/mira_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/mcf.cc" "src/workloads/CMakeFiles/mira_workloads.dir/mcf.cc.o" "gcc" "src/workloads/CMakeFiles/mira_workloads.dir/mcf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mira_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mira_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
