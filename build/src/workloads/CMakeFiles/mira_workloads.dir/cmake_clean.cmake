file(REMOVE_RECURSE
  "CMakeFiles/mira_workloads.dir/arraysum.cc.o"
  "CMakeFiles/mira_workloads.dir/arraysum.cc.o.d"
  "CMakeFiles/mira_workloads.dir/dataframe.cc.o"
  "CMakeFiles/mira_workloads.dir/dataframe.cc.o.d"
  "CMakeFiles/mira_workloads.dir/gpt2.cc.o"
  "CMakeFiles/mira_workloads.dir/gpt2.cc.o.d"
  "CMakeFiles/mira_workloads.dir/graph.cc.o"
  "CMakeFiles/mira_workloads.dir/graph.cc.o.d"
  "CMakeFiles/mira_workloads.dir/mcf.cc.o"
  "CMakeFiles/mira_workloads.dir/mcf.cc.o.d"
  "libmira_workloads.a"
  "libmira_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
