# Empty dependencies file for mira_runtime.
# This may be replaced when dependencies are built.
