file(REMOVE_RECURSE
  "libmira_runtime.a"
)
