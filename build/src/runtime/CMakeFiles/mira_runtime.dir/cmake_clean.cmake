file(REMOVE_RECURSE
  "CMakeFiles/mira_runtime.dir/plan.cc.o"
  "CMakeFiles/mira_runtime.dir/plan.cc.o.d"
  "libmira_runtime.a"
  "libmira_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mira_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
