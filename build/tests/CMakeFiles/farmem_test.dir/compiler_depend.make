# Empty compiler generated dependencies file for farmem_test.
# This may be replaced when dependencies are built.
