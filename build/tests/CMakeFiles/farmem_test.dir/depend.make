# Empty dependencies file for farmem_test.
# This may be replaced when dependencies are built.
