file(REMOVE_RECURSE
  "CMakeFiles/farmem_test.dir/farmem_test.cc.o"
  "CMakeFiles/farmem_test.dir/farmem_test.cc.o.d"
  "farmem_test"
  "farmem_test.pdb"
  "farmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
