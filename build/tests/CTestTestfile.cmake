# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/backends_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/farmem_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/swap_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
